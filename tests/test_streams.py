"""Tests for the async-stream subsystem: timeline, overlapped cost model,
the ``atgpu-async`` backend, and the streamed algorithm execution modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import Reduction, VectorAddition, chunk_bounds
from repro.algorithms.base import StreamedRunResult
from repro.core.backends import (
    backend_names,
    get_backend,
    make_async_backend,
    overlapped_cost,
    register_backend,
    unregister_backend,
)
from repro.core.metrics import RoundMetrics
from repro.core.presets import GTX_650
from repro.core.transfer import (
    BoyerTransferModel,
    OverlappedTransferModel,
    TransferDirection,
)
from repro.experiments import (
    ExperimentSpec,
    Session,
    figure_chunk_sweep,
    figure_overlap,
    overlap_summary,
)
from repro.simulator.config import DeviceConfig
from repro.simulator.streams import (
    StreamOpKind,
    StreamTimeline,
    pipeline_makespan,
)


class TestStreamTimeline:
    def test_in_stream_operations_serialise(self):
        timeline = StreamTimeline()
        first = timeline.submit("s0", StreamOpKind.H2D, 2.0)
        second = timeline.submit("s0", StreamOpKind.KERNEL, 3.0)
        assert first.start_s == 0.0
        assert second.start_s == first.end_s == 2.0
        assert timeline.makespan_s == 5.0
        assert timeline.serial_time_s == 5.0

    def test_different_engines_overlap_across_streams(self):
        timeline = StreamTimeline()
        copy = timeline.submit("s0", StreamOpKind.H2D, 4.0)
        kernel = timeline.submit("s1", StreamOpKind.KERNEL, 4.0)
        assert copy.start_s == kernel.start_s == 0.0
        assert timeline.makespan_s == 4.0
        assert timeline.serial_time_s == 8.0
        assert timeline.overlap_saving_s == 4.0

    def test_same_engine_is_fifo_across_streams(self):
        timeline = StreamTimeline()
        timeline.submit("s0", StreamOpKind.H2D, 2.0)
        second = timeline.submit("s1", StreamOpKind.H2D, 2.0)
        assert second.start_s == 2.0
        assert timeline.makespan_s == 4.0

    def test_explicit_event_wait_crosses_streams(self):
        timeline = StreamTimeline()
        kernel = timeline.submit("s0", StreamOpKind.KERNEL, 5.0)
        copy = timeline.submit("s1", StreamOpKind.D2H, 1.0, wait=[kernel])
        assert copy.start_s == 5.0
        assert copy.blocked_by == kernel.index

    def test_single_copy_engine_serialises_both_directions(self):
        dual = StreamTimeline()
        dual.submit("s0", StreamOpKind.H2D, 3.0)
        dual.submit("s1", StreamOpKind.D2H, 3.0)
        assert dual.makespan_s == 3.0

        single = StreamTimeline(dual_copy_engines=False)
        single.submit("s0", StreamOpKind.H2D, 3.0)
        single.submit("s1", StreamOpKind.D2H, 3.0)
        assert single.makespan_s == 6.0

    def test_critical_path_ends_at_makespan(self):
        timeline = StreamTimeline()
        a = timeline.submit("s0", StreamOpKind.H2D, 2.0)
        timeline.submit("s0", StreamOpKind.KERNEL, 1.0)
        c = timeline.submit("s1", StreamOpKind.H2D, 5.0)
        path = timeline.critical_path()
        assert path[-1].end_s == timeline.makespan_s == 7.0
        assert [op.index for op in path] == [a.index, c.index]

    def test_rejects_negative_duration_and_bad_kind(self):
        timeline = StreamTimeline()
        with pytest.raises(ValueError):
            timeline.submit("s0", StreamOpKind.H2D, -1.0)
        with pytest.raises(TypeError):
            timeline.submit("s0", "h2d", 1.0)
        with pytest.raises(ValueError):
            timeline.stream("")

    def test_rejects_foreign_wait_events_and_streams(self):
        other = StreamTimeline()
        foreign = other.submit("s0", StreamOpKind.KERNEL, 1.0)
        timeline = StreamTimeline()
        with pytest.raises(ValueError):
            timeline.submit("s0", StreamOpKind.D2H, 1.0, wait=[foreign])
        with pytest.raises(ValueError):
            timeline.submit(other.stream("s0"), StreamOpKind.D2H, 1.0)

    def test_engine_busy_times_and_render(self):
        timeline = StreamTimeline()
        timeline.submit("s0", StreamOpKind.H2D, 2.0, name="copy in")
        timeline.submit("s0", StreamOpKind.KERNEL, 3.0, name="work")
        busy = timeline.engine_busy_times()
        assert busy == {"h2d": 2.0, "compute": 3.0}
        rendered = timeline.render()
        assert "copy in" in rendered and "compute" in rendered

    def test_wiring_from_transfer_and_timing_engines(self, tiny_device):
        engine = tiny_device.transfer_engine
        record = engine.transfer(64, TransferDirection.HOST_TO_DEVICE)
        tiny_device.allocate("x", 64)
        from repro.algorithms.vector_addition import VectorAdditionKernel

        tiny_device.allocate("a", 64)
        tiny_device.allocate("b", 64)
        tiny_device.allocate("c", 64)
        kernel = VectorAdditionKernel(64, tiny_device.config.warp_width)
        pairs, _ = tiny_device.functional_engine.execute_sampled(kernel)
        timing = tiny_device.timing_engine.kernel_timing(kernel.name, pairs)

        timeline = StreamTimeline()
        op_copy = timeline.add_transfer("s0", record)
        op_kernel = timeline.add_kernel("s0", timing, wait=[op_copy])
        assert op_copy.duration_s == record.duration_s
        assert op_kernel.duration_s == timing.total_time_s
        assert op_kernel.start_s == op_copy.end_s

    def test_pipeline_makespan_matches_timeline(self):
        chunk_stages = [(2.0, 1.0, 0.5)] * 4
        timeline = StreamTimeline()
        for index, stages in enumerate(chunk_stages):
            stream = f"chunk{index}"
            timeline.submit(stream, StreamOpKind.H2D, stages[0])
            timeline.submit(stream, StreamOpKind.KERNEL, stages[1])
            timeline.submit(stream, StreamOpKind.D2H, stages[2])
        assert pipeline_makespan(chunk_stages) == pytest.approx(
            timeline.makespan_s
        )
        # Bottleneck-bound: h2d dominates, makespan = 4·2.0 + 1.0 + 0.5.
        assert timeline.makespan_s == pytest.approx(9.5)


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_ragged_split_covers_everything(self):
        bounds = chunk_bounds(10, 3)
        assert bounds[0] == (0, 4)
        assert bounds[-1][1] == 10
        assert sum(hi - lo for lo, hi in bounds) == 10

    def test_chunks_clamped_to_n(self):
        assert chunk_bounds(2, 5) == [(0, 1), (1, 2)]

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            chunk_bounds(0, 2)
        with pytest.raises(ValueError):
            chunk_bounds(4, 0)


class TestOverlappedTransferModel:
    def _round(self, inward=1000.0, outward=500.0):
        return RoundMetrics(
            time=1.0, io_blocks=1.0,
            inward_words=inward, outward_words=outward,
            inward_transactions=1 if inward else 0,
            outward_transactions=1 if outward else 0,
        )

    def test_one_chunk_degenerates_to_serial(self):
        model = OverlappedTransferModel(alpha=1e-4, beta=1e-6, chunks=1)
        metrics = self._round()
        kernel = 3e-4
        assert model.round_cost(metrics, kernel) == pytest.approx(
            model.serial_round_cost(metrics, kernel)
        )

    def test_pipeline_bounds_hold(self):
        model = OverlappedTransferModel(alpha=1e-4, beta=1e-6, chunks=4)
        metrics = self._round()
        kernel = 3e-4
        stages = model.stage_costs(metrics, kernel)
        cost = model.round_cost(metrics, kernel)
        assert max(stages) <= cost <= sum(stages)

    def test_overlap_wins_on_balanced_stages(self):
        model = OverlappedTransferModel(alpha=1e-6, beta=1e-6, chunks=4)
        metrics = self._round()
        kernel = 1e-3  # comparable to the transfer stages: much to hide
        assert model.round_cost(metrics, kernel) < model.serial_round_cost(
            metrics, kernel
        )
        assert model.overlap_saving(metrics, kernel) > 0

    def test_chunking_overhead_can_lose_on_tiny_transfers(self):
        # A 1-word outward copy split into 8 chunks pays 8α for nothing.
        model = OverlappedTransferModel(alpha=1e-3, beta=1e-9, chunks=8)
        metrics = self._round(inward=0.0, outward=1.0)
        assert model.overlap_saving(metrics, kernel_cost=0.0) < 0

    def test_serial_model_matches_boyer(self):
        model = OverlappedTransferModel(alpha=2e-4, beta=3e-6, chunks=2)
        boyer = BoyerTransferModel(alpha=2e-4, beta=3e-6)
        metrics = self._round()
        assert model.serial_round_cost(metrics, 0.0) == pytest.approx(
            boyer.round_cost(metrics)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            OverlappedTransferModel(alpha=-1.0, beta=0.0)
        with pytest.raises(ValueError):
            OverlappedTransferModel(alpha=0.0, beta=0.0, chunks=0)


class TestAsyncBackend:
    def test_registered_by_default(self):
        assert "atgpu-async" in backend_names()
        assert get_backend("atgpu-async").label == "ATGPU (async)"

    def test_never_above_serial_atgpu(self):
        preset = GTX_650
        for algorithm in (VectorAddition(), Reduction()):
            n = algorithm.default_sizes()[0]
            metrics = algorithm.metrics(n, preset.machine)
            serial = get_backend("atgpu").cost(
                metrics, preset.machine, preset.parameters, preset.occupancy
            )
            overlapped = get_backend("atgpu-async").cost(
                metrics, preset.machine, preset.parameters, preset.occupancy
            )
            assert overlapped <= serial + 1e-15

    def test_one_chunk_equals_serial_atgpu(self):
        preset = GTX_650
        metrics = VectorAddition().metrics(100_000, preset.machine)
        serial = get_backend("atgpu").cost(
            metrics, preset.machine, preset.parameters, preset.occupancy
        )
        assert overlapped_cost(
            metrics, preset.machine, preset.parameters, preset.occupancy,
            chunks=1,
        ) == pytest.approx(serial)

    def test_make_async_backend_variants(self):
        backend = make_async_backend(8)
        assert backend.name == "atgpu-async8"
        register_backend(backend)
        try:
            preset = GTX_650
            metrics = VectorAddition().metrics(400_000, preset.machine)
            deep = get_backend("atgpu-async8").cost(
                metrics, preset.machine, preset.parameters, preset.occupancy
            )
            serial = get_backend("atgpu").cost(
                metrics, preset.machine, preset.parameters, preset.occupancy
            )
            assert deep < serial
        finally:
            unregister_backend("atgpu-async8")


class TestStreamedExecution:
    def test_vector_addition_streamed_is_correct_and_faster(self):
        algorithm = VectorAddition()
        inputs = algorithm.generate_input(1_000, seed=3)
        from repro.simulator.device import GPUDevice

        device = GPUDevice(DeviceConfig.tiny_test_device())
        result = algorithm.run_streamed(device, inputs, chunks=4)
        assert isinstance(result, StreamedRunResult)
        assert np.array_equal(result.outputs["C"], inputs["A"] + inputs["B"])
        assert result.chunk_count == 4
        assert result.makespan_s < result.serial_time_s
        assert result.overlap_speedup > 1.0

    def test_makespan_within_pipeline_bounds(self):
        algorithm = VectorAddition()
        result = algorithm.observe_streamed(
            200_000, config=DeviceConfig.gtx650(), chunks=4
        )
        busy = result.timeline.engine_busy_times()
        assert max(busy.values()) <= result.makespan_s <= result.serial_time_s

    def test_reduction_streamed_is_correct_and_faster(self):
        algorithm = Reduction()
        inputs = algorithm.generate_input(3_000, seed=1)
        from repro.simulator.device import GPUDevice

        device = GPUDevice(DeviceConfig.tiny_test_device())
        result = algorithm.run_streamed(device, inputs, chunks=4)
        assert result.outputs["Ans"][0] == inputs["A"].sum()
        assert result.makespan_s < result.serial_time_s

    def test_reduction_streamed_many_tiny_chunks(self):
        # More chunks than partial-sum slots of the unchunked run: the
        # partials buffer must grow with the chunked first level.
        algorithm = Reduction()
        result = algorithm.observe_streamed(
            100, config=DeviceConfig.tiny_test_device(), chunks=16
        )
        assert result.outputs["Ans"][0] == pytest.approx(
            algorithm.generate_input(100, seed=0)["A"].sum()
        )

    def test_base_class_raises_for_unstreamed_algorithms(self):
        from repro.algorithms import MatrixMultiplication

        algorithm = MatrixMultiplication()
        assert not algorithm.supports_streaming
        assert VectorAddition().supports_streaming
        with pytest.raises(NotImplementedError):
            algorithm.run_streamed(None, {})


class TestOverlapAcceptance:
    """The PR's acceptance scenario: a copy-bound streamed vector-addition
    sweep where model and simulator agree that overlap wins."""

    SIZES = (100_000, 200_000, 400_000)
    CHUNKS = 4

    def test_async_backend_usable_via_spec_and_strictly_faster(self):
        spec = ExperimentSpec(
            "vector_addition",
            sizes=self.SIZES,
            backends=("atgpu", "swgpu", "perfect", "atgpu-async"),
        )
        result = Session().run(spec)
        serial = result.comparison().prediction.series_for("atgpu")
        overlapped = result.comparison().prediction.series_for("atgpu-async")
        assert np.all(overlapped < serial)

        figure = figure_overlap(result)
        assert np.all(figure.series["Speedup Δ"] > 1.0)
        summary = overlap_summary({"vector_addition": result})
        assert summary["vector_addition"].mean_speedup > 1.0

    def test_model_cost_within_stage_bounds(self):
        preset = GTX_650
        model = OverlappedTransferModel(
            alpha=preset.parameters.alpha,
            beta=preset.parameters.beta,
            chunks=self.CHUNKS,
        )
        algorithm = VectorAddition()
        from repro.core.cost import ATGPUCostModel

        cost_model = ATGPUCostModel(
            preset.machine, preset.parameters, preset.occupancy
        )
        for n in self.SIZES:
            (round_metrics,) = algorithm.metrics(n, preset.machine).rounds
            breakdown = cost_model.round_breakdown(
                round_metrics, use_occupancy=True
            )
            kernel = breakdown.compute + breakdown.io
            stages = model.stage_costs(round_metrics, kernel)
            cost = model.round_cost(round_metrics, kernel)
            assert max(stages) <= cost <= sum(stages)
            assert cost < model.serial_round_cost(round_metrics, kernel)

    def test_simulated_makespan_strictly_below_serial_and_bounded(self):
        algorithm = VectorAddition()
        for n in self.SIZES:
            result = algorithm.observe_streamed(
                n, config=DeviceConfig.gtx650(), chunks=self.CHUNKS
            )
            busy = result.timeline.engine_busy_times()
            assert result.makespan_s < result.serial_time_s
            assert max(busy.values()) <= result.makespan_s

    def test_prediction_and_simulation_agree_on_overlap_speedup(self):
        """Both sides must agree on the direction and rough magnitude."""
        preset = GTX_650
        algorithm = VectorAddition()
        for n in self.SIZES:
            metrics = algorithm.metrics(n, preset.machine)
            serial = overlapped_cost(
                metrics, preset.machine, preset.parameters, preset.occupancy,
                chunks=1,
            )
            overlapped = overlapped_cost(
                metrics, preset.machine, preset.parameters, preset.occupancy,
                chunks=self.CHUNKS,
            )
            predicted_speedup = serial / overlapped
            simulated = algorithm.observe_streamed(
                n, config=DeviceConfig.gtx650(), chunks=self.CHUNKS
            )
            # Same direction: both report a real win from overlap ...
            assert predicted_speedup > 1.05
            assert simulated.overlap_speedup > 1.05
            # ... and approximately the same magnitude.
            assert simulated.overlap_speedup == pytest.approx(
                predicted_speedup, rel=0.35
            )

    def test_chunk_sweep_figure_has_serial_baseline(self):
        figure = figure_chunk_sweep("vector_addition", 200_000)
        assert figure.sizes[0] == 1
        assert figure.series["Speedup Δ"][0] == pytest.approx(1.0)
        assert figure.series["Speedup Δ"].max() > 1.0
