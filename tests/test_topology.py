"""Tests for the topology subsystem: the fleet description
(:mod:`repro.core.topology`), the load-aware shard planner, the
topology-aware cost model and its batch evaluator, the auto-registered
``atgpu-topo`` backends, topology-carrying experiment specs, the
serving-layer coalescing key, the topology-driven :class:`DevicePool`
and the topology-aware sharded execution modes.

The anchor property throughout: a **homogeneous** topology must be
bit-for-bit identical to the PR 3 ``(devices, contention)`` model at
every layer — ``atgpu-multi`` is a thin shim over it."""

from __future__ import annotations

import json
from concurrent.futures import Future

import numpy as np
import pytest

from repro.algorithms import Reduction, VectorAddition
from repro.algorithms.registry import all_algorithm_names, create
from repro.core.backends import (
    TOPOLOGY_BACKEND,
    backend_names,
    ensure_topology_backend,
    get_backend,
    make_sharded_backend,
    make_topology_backend,
    unregister_backend,
)
from repro.core.batch import MetricsBatch, sharded_cost_batch
from repro.core.presets import GTX_650, get_preset
from repro.core.sharding import (
    ShardedCostModel,
    TopologyCostModel,
    shard_sizes,
    topology_cost_batch,
    topology_gpu_cost,
)
from repro.core.topology import (
    DeviceSpec,
    LinkSpec,
    Topology,
    contended_streaming,
    contention_stretch,
    plan_bounds,
    plan_shards,
    straggler_finish,
)
from repro.core.transfer import TransferDirection
from repro.experiments import ExperimentSpec, Session
from repro.experiments.session import predict_group
from repro.serving.queue import PredictionRequest
from repro.simulator.config import DeviceConfig
from repro.simulator.device import GPUDevice
from repro.simulator.device_pool import DevicePool
from repro.utils.validation import UnknownFieldError

#: A mixed-generation fleet: one default (gtx650) device, one faster
#: gtx980, one occupancy-capped default — three distinct throughputs on
#: a moderately contended host link.
HETERO = Topology(
    devices=(
        DeviceSpec(),
        DeviceSpec(preset="gtx980"),
        DeviceSpec(hardware_block_limit=8),
    ),
    links=(LinkSpec(kind="host", socket=0, contention=0.3),),
)

#: Two sockets with their own links plus a P2P fabric.
NUMA_P2P = Topology(
    devices=(
        DeviceSpec(socket=0),
        DeviceSpec(socket=0, preset="gtx980"),
        DeviceSpec(socket=1),
        DeviceSpec(socket=1),
    ),
    links=(
        LinkSpec(kind="host", socket=0, contention=0.5),
        LinkSpec(kind="host", socket=1, contention=0.2),
        LinkSpec(kind="p2p", alpha=5e-6, beta=4e-10),
    ),
)


class TestContentionHelpers:
    def test_contention_stretch_is_the_shared_formula(self):
        for devices in (1, 2, 4, 7):
            for c in (0.0, 0.25, 1.0):
                assert contention_stretch(devices, c) == 1.0 + c * (devices - 1)

    def test_contended_streaming_interpolates(self):
        assert contended_streaming(100.0, 25.0, 0.0) == 25.0
        assert contended_streaming(100.0, 25.0, 1.0) == 100.0
        mid = contended_streaming(100.0, 25.0, 0.5)
        assert 25.0 < mid < 100.0

    def test_equal_shards_reduce_streaming_to_stretch(self):
        # c·(P·s) + (1−c)·s == s·(1 + c·(P−1)) — the model/simulator bridge.
        P, s, c = 4, 250.0, 0.3
        assert contended_streaming(P * s, s, c) == pytest.approx(
            s * contention_stretch(P, c)
        )

    def test_contended_streaming_is_elementwise(self):
        total = np.array([100.0, 10.0])
        shard = np.array([25.0, 5.0])
        out = contended_streaming(total, shard, 0.5)
        assert out.shape == (2,)
        assert out[0] == contended_streaming(100.0, 25.0, 0.5)


class TestDeviceAndLinkSpecs:
    def test_device_defaults_and_is_default(self):
        device = DeviceSpec()
        assert device.is_default
        assert not DeviceSpec(preset="gtx980").is_default
        assert not DeviceSpec(hardware_block_limit=4).is_default

    def test_device_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(preset="")
        with pytest.raises(ValueError):
            DeviceSpec(hardware_block_limit=0)
        with pytest.raises(ValueError):
            DeviceSpec(socket=-1)

    def test_link_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(kind="nvlink")
        with pytest.raises(ValueError):
            LinkSpec(contention=1.5)
        with pytest.raises(ValueError):
            LinkSpec(alpha=-1.0)

    def test_round_trips(self):
        device = DeviceSpec(preset="gtx980", socket=1, name="fast")
        assert DeviceSpec.from_dict(device.to_dict()) == device
        link = LinkSpec(kind="p2p", contention=0.25, beta=1e-10)
        assert LinkSpec.from_dict(link.to_dict()) == link

    def test_unknown_field_errors_are_typed_and_name_the_field(self):
        with pytest.raises(UnknownFieldError) as err:
            DeviceSpec.from_dict({"preset": None, "sockte": 1})
        assert err.value.kind == "DeviceSpec"
        assert err.value.fields == ("sockte",)
        assert "sockte" in str(err.value)
        with pytest.raises(UnknownFieldError) as err:
            LinkSpec.from_dict({"kind": "host", "bandwidth": 1e9})
        assert err.value.fields == ("bandwidth",)
        # It is still a ValueError, so broad handlers keep working.
        assert isinstance(err.value, ValueError)


class TestTopologyConstruction:
    def test_homogeneous_factory(self):
        fleet = Topology.homogeneous(4, contention=0.3)
        assert fleet.num_devices == 4
        assert fleet.is_uniform
        assert fleet.sockets == (0,)
        assert fleet.host_link(0).contention == 0.3
        assert not fleet.has_p2p

    def test_topology_is_hashable_and_usable_as_a_key(self):
        a = Topology.homogeneous(2)
        b = Topology.homogeneous(2)
        assert a == b
        assert {a: "x"}[b] == "x"

    def test_nested_mappings_are_coerced(self):
        fleet = Topology(
            devices=({"preset": "gtx980"}, {"preset": None}),
            links=({"kind": "host", "contention": 0.1},),
        )
        assert isinstance(fleet.devices[0], DeviceSpec)
        assert fleet.devices[0].preset == "gtx980"
        assert isinstance(fleet.links[0], LinkSpec)

    def test_validation_rules(self):
        with pytest.raises(ValueError):
            Topology(devices=())
        with pytest.raises(ValueError):
            Topology(links=(LinkSpec(socket=0), LinkSpec(socket=0)))
        with pytest.raises(ValueError):
            Topology(
                links=(
                    LinkSpec(socket=0),
                    LinkSpec(kind="p2p"),
                    LinkSpec(kind="p2p", alpha=1e-6),
                )
            )
        with pytest.raises(ValueError, match="socket"):
            Topology(devices=(DeviceSpec(socket=1),))

    def test_views_on_the_numa_fleet(self):
        assert NUMA_P2P.sockets == (0, 1)
        assert NUMA_P2P.devices_on_socket(0) == (0, 1)
        assert NUMA_P2P.devices_on_socket(1) == (2, 3)
        assert NUMA_P2P.has_p2p
        assert NUMA_P2P.p2p_link.beta == 4e-10
        with pytest.raises(KeyError):
            NUMA_P2P.host_link(7)

    def test_is_uniform_rejects_every_heterogeneity(self):
        assert not HETERO.is_uniform
        assert not NUMA_P2P.is_uniform
        assert not Topology(
            links=(LinkSpec(alpha=1e-5),)
        ).is_uniform

    def test_throughputs_homogeneous_are_identical(self):
        weights = Topology.homogeneous(3).throughputs(
            GTX_650.parameters, GTX_650.occupancy
        )
        assert len(set(weights)) == 1

    def test_throughputs_rank_the_presets(self):
        weights = HETERO.throughputs(GTX_650.parameters, GTX_650.occupancy)
        assert weights[1] > weights[0]  # gtx980 outruns the gtx650
        assert weights[2] < weights[0]  # the capped device is slowest


class TestTopologySerialisation:
    @pytest.mark.parametrize("fleet", [Topology(), HETERO, NUMA_P2P])
    def test_json_round_trip(self, fleet):
        assert Topology.from_json(fleet.to_json()) == fleet
        assert Topology.from_dict(json.loads(fleet.to_json())) == fleet

    def test_topology_hash_is_stable_and_discriminating(self):
        assert (
            Topology.homogeneous(2).topology_hash()
            == Topology.homogeneous(2).topology_hash()
        )
        assert (
            Topology.homogeneous(2).topology_hash()
            != Topology.homogeneous(3).topology_hash()
        )
        assert len(HETERO.topology_hash()) == 16

    def test_unknown_keys_rejected_at_every_level(self):
        good = HETERO.to_dict()
        with pytest.raises(UnknownFieldError) as err:
            Topology.from_dict({**good, "fabric": []})
        assert err.value.kind == "Topology"
        assert err.value.fields == ("fabric",)
        bad_device = {**good, "devices": [{"presett": "gtx980"}]}
        with pytest.raises(UnknownFieldError) as err:
            Topology.from_dict(bad_device)
        assert err.value.kind == "DeviceSpec"
        bad_link = {**good, "links": [{"kind": "host", "lanes": 16}]}
        with pytest.raises(UnknownFieldError) as err:
            Topology.from_dict(bad_link)
        assert err.value.fields == ("lanes",)


class TestPlanShards:
    def test_equal_weights_match_pr3_shard_sizes_exactly(self):
        for total in (0, 1, 10, 1234):
            for count in (1, 3, 7):
                assert plan_shards(total, (2.0,) * count) == shard_sizes(
                    total, count
                )

    def test_conservation_and_non_negativity(self):
        shards = plan_shards(1000, (1.0, 3.0, 2.5))
        assert sum(shards) == 1000
        assert all(s >= 0 for s in shards)

    def test_faster_devices_take_more(self):
        shards = plan_shards(100, (1.0, 3.0))
        assert shards[1] > shards[0]

    def test_greedy_matches_brute_force_optimum(self):
        weights = (1.0, 2.0, 3.5)
        total = 17
        best = min(
            (
                max((a / weights[0]), (b / weights[1]),
                    ((total - a - b) / weights[2]))
                for a in range(total + 1)
                for b in range(total + 1 - a)
            ),
        )
        shards = plan_shards(total, weights)
        assert straggler_finish(shards, weights) == pytest.approx(best)

    def test_strictly_lower_straggler_than_even_split(self):
        weights = HETERO.throughputs(GTX_650.parameters, GTX_650.occupancy)
        total = 31_250
        planned = plan_shards(total, weights)
        even = shard_sizes(total, len(weights))
        assert straggler_finish(planned, weights) < straggler_finish(
            even, weights
        )

    def test_plan_bounds_are_contiguous_and_aligned(self):
        weights = (1.0, 4.0, 2.0)
        bounds = plan_bounds(50, weights)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 50
        assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))
        assert [hi - lo for lo, hi in bounds] == plan_shards(50, weights)

    def test_zero_width_bounds_mark_idle_devices(self):
        bounds = plan_bounds(2, (1.0, 1.0, 1.0, 1.0))
        assert sum(1 for lo, hi in bounds if hi > lo) == 2

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            plan_shards(10, ())
        with pytest.raises(ValueError):
            plan_shards(10, (1.0, 0.0))
        with pytest.raises(ValueError):
            plan_shards(-1, (1.0,))

    def test_straggler_finish_checks_lengths(self):
        with pytest.raises(ValueError):
            straggler_finish((1, 2), (1.0,))


class TestHomogeneousParity:
    """Satellite 3: homogeneous ``Topology`` == ``atgpu-multi``, bit for bit."""

    COMBOS = ((1, 0.0), (2, 0.0), (3, 0.4), (4, 1.0))
    SIZES = (64, 1024, 4096)

    @pytest.mark.parametrize("name", all_algorithm_names())
    def test_scalar_costs_identical_across_all_algorithms(self, name):
        preset = GTX_650
        algorithm = create(name)
        for n in self.SIZES:
            metrics = algorithm.metrics(n, preset.machine)
            for devices, contention in self.COMBOS:
                legacy = ShardedCostModel(
                    preset.machine, preset.parameters, preset.occupancy,
                    devices=devices, contention=contention,
                ).gpu_cost(metrics)
                fleet = topology_gpu_cost(
                    metrics, preset.machine, preset.parameters,
                    preset.occupancy,
                    Topology.homogeneous(devices, contention),
                )
                assert fleet == legacy, (name, n, devices, contention)

    @pytest.mark.parametrize("name", all_algorithm_names())
    def test_batch_costs_identical_across_all_algorithms(self, name):
        preset = GTX_650
        algorithm = create(name)
        batch = MetricsBatch.compile(
            name, self.SIZES,
            metrics_factory=lambda n: algorithm.metrics(n, preset.machine),
        )
        for devices, contention in self.COMBOS:
            legacy = sharded_cost_batch(
                batch, preset.machine, preset.parameters, preset.occupancy,
                devices=devices, contention=contention,
            )
            fleet = topology_cost_batch(
                batch, preset.machine, preset.parameters, preset.occupancy,
                Topology.homogeneous(devices, contention),
            )
            assert np.array_equal(fleet, legacy), (name, devices, contention)

    def test_sharded_backend_is_a_topology_shim(self):
        preset = GTX_650
        metrics = VectorAddition().metrics(1_000_000, preset.machine)
        shim = make_sharded_backend(4, contention=0.25).cost(
            metrics, preset.machine, preset.parameters, preset.occupancy
        )
        direct = topology_gpu_cost(
            metrics, preset.machine, preset.parameters, preset.occupancy,
            Topology.homogeneous(4, 0.25),
        )
        assert shim == direct


class TestHeterogeneousModel:
    @pytest.mark.parametrize("fleet", [HETERO, NUMA_P2P])
    def test_scalar_and_batch_agree_exactly(self, fleet):
        preset = GTX_650
        algorithm = VectorAddition()
        sizes = (4096, 100_000, 1_000_000)
        batch = MetricsBatch.compile(
            "vector_addition", sizes,
            metrics_factory=lambda n: algorithm.metrics(n, preset.machine),
        )
        vector = topology_cost_batch(
            batch, preset.machine, preset.parameters, preset.occupancy, fleet
        )
        for index, n in enumerate(sizes):
            scalar = topology_gpu_cost(
                algorithm.metrics(n, preset.machine),
                preset.machine, preset.parameters, preset.occupancy, fleet,
            )
            assert vector[index] == scalar

    def test_load_aware_planner_beats_even_split_when_compute_bound(self):
        # The planner balances *kernel* finish times, so its win shows on
        # compute-bound workloads (matmul); transfer-bound sweeps like
        # vector addition are balanced by words, where even splitting is
        # already optimal on a shared link.
        preset = GTX_650
        metrics = create("matrix_multiplication").metrics(
            1024, preset.machine
        )
        load_aware = TopologyCostModel(
            preset.machine, preset.parameters, preset.occupancy, HETERO,
        ).gpu_cost(metrics)
        even = TopologyCostModel(
            preset.machine, preset.parameters, preset.occupancy, HETERO,
            planner="even",
        ).gpu_cost(metrics)
        assert load_aware < even

    def test_planner_validated(self):
        preset = GTX_650
        with pytest.raises(ValueError):
            TopologyCostModel(
                preset.machine, preset.parameters, preset.occupancy,
                HETERO, planner="random",
            )

    def test_p2p_fabric_charges_a_shuffle_term(self):
        preset = GTX_650
        metrics = VectorAddition().metrics(500_000, preset.machine)
        no_fabric = Topology(
            devices=NUMA_P2P.devices,
            links=tuple(l for l in NUMA_P2P.links if l.kind == "host"),
        )
        with_fabric = topology_gpu_cost(
            metrics, preset.machine, preset.parameters, preset.occupancy,
            NUMA_P2P,
        )
        without = topology_gpu_cost(
            metrics, preset.machine, preset.parameters, preset.occupancy,
            no_fabric,
        )
        assert with_fabric > without

    def test_numa_sockets_contend_only_locally(self):
        preset = GTX_650
        metrics = VectorAddition().metrics(1_000_000, preset.machine)
        one_socket = Topology(
            devices=(DeviceSpec(),) * 4,
            links=(LinkSpec(kind="host", socket=0, contention=1.0),),
        )
        two_sockets = Topology(
            devices=(
                DeviceSpec(socket=0), DeviceSpec(socket=0),
                DeviceSpec(socket=1), DeviceSpec(socket=1),
            ),
            links=(
                LinkSpec(kind="host", socket=0, contention=1.0),
                LinkSpec(kind="host", socket=1, contention=1.0),
            ),
        )
        cost = lambda fleet: topology_gpu_cost(
            metrics, preset.machine, preset.parameters, preset.occupancy,
            fleet,
        )
        assert cost(two_sockets) < cost(one_socket)


class TestTopologyBackends:
    def test_backend_name_derives_from_the_hash(self):
        backend = make_topology_backend(HETERO)
        assert backend.name == (
            f"{TOPOLOGY_BACKEND}-{HETERO.topology_hash()[:8]}"
        )
        even = make_topology_backend(HETERO, planner="even")
        assert even.name.endswith("-even")

    def test_ensure_is_idempotent_and_registers(self):
        name = ensure_topology_backend(HETERO)
        try:
            assert name in backend_names()
            assert ensure_topology_backend(HETERO) == name
            preset = GTX_650
            metrics = Reduction().metrics(1 << 14, preset.machine)
            cost = get_backend(name).cost(
                metrics, preset.machine, preset.parameters, preset.occupancy
            )
            assert cost == topology_gpu_cost(
                metrics, preset.machine, preset.parameters, preset.occupancy,
                HETERO,
            )
        finally:
            unregister_backend(name)


class TestSpecTopology:
    def test_spec_round_trips_with_a_topology(self):
        spec = ExperimentSpec(
            "vector_addition", sizes=(1000, 2000), topology=HETERO
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt.topology == HETERO

    def test_topology_mapping_coerced_at_construction(self):
        spec = ExperimentSpec(
            "vector_addition", sizes=(1000,), topology=HETERO.to_dict()
        )
        assert spec.topology == HETERO
        with pytest.raises(TypeError):
            ExperimentSpec("vector_addition", sizes=(1000,), topology=3)

    def test_unknown_spec_key_raises_typed_error(self):
        payload = ExperimentSpec("vector_addition", sizes=(1000,)).to_dict()
        payload["topolgy"] = None
        with pytest.raises(UnknownFieldError) as err:
            ExperimentSpec.from_dict(payload)
        assert err.value.kind == "ExperimentSpec"
        assert err.value.fields == ("topolgy",)
        assert "topolgy" in str(err.value)

    def test_topology_key_and_hash_inclusion(self):
        plain = ExperimentSpec("vector_addition", sizes=(1000,))
        fleet = plain.with_overrides(topology=HETERO)
        assert plain.topology_key() == ""
        assert fleet.topology_key() == HETERO.topology_hash()
        assert plain.spec_hash() != fleet.spec_hash()

    def test_placeholder_backend_requires_a_topology(self):
        with pytest.raises(ValueError, match="topology"):
            ExperimentSpec(
                "vector_addition", sizes=(1000,),
                backends=("atgpu", TOPOLOGY_BACKEND),
            )

    def test_resolved_backends_swaps_the_placeholder(self):
        spec = ExperimentSpec(
            "vector_addition", sizes=(1000,),
            backends=("atgpu", TOPOLOGY_BACKEND), topology=HETERO,
        )
        resolved = spec.resolved_backends()
        try:
            assert resolved[0] == "atgpu"
            assert resolved[1].startswith(f"{TOPOLOGY_BACKEND}-")
            assert resolved[1] in backend_names()
            plain = ExperimentSpec("vector_addition", sizes=(1000,))
            assert plain.resolved_backends() == plain.backends
        finally:
            unregister_backend(resolved[1])


class TestSessionTopology:
    def test_session_serves_the_placeholder_under_its_requested_name(
        self, tmp_path
    ):
        session = Session(cache_dir=tmp_path)
        spec = ExperimentSpec(
            "vector_addition",
            sizes=(100_000, 200_000),
            backends=("atgpu", TOPOLOGY_BACKEND),
            topology=HETERO,
        )
        result = session.run(spec)
        fleet = result.backend_series(TOPOLOGY_BACKEND)
        serial = result.backend_series("atgpu")
        # Three devices (one of them faster) beat the serial evaluation.
        assert np.all(fleet < serial)
        fresh = Session(cache_dir=tmp_path)
        cached = fresh.run(spec)
        assert fresh.cache_hits == 1
        assert np.array_equal(
            cached.backend_series(TOPOLOGY_BACKEND), fleet
        )

    def test_homogeneous_placeholder_matches_atgpu_multi_series(self):
        fleet_spec = ExperimentSpec(
            "vector_addition",
            sizes=(50_000, 150_000),
            backends=(TOPOLOGY_BACKEND,),
            topology=Topology.homogeneous(2),
        )
        multi_spec = fleet_spec.with_overrides(
            backends=("atgpu-multi",), topology=None
        )
        session = Session()
        fleet = session.run(fleet_spec).backend_series(TOPOLOGY_BACKEND)
        multi = session.run(multi_spec).backend_series("atgpu-multi")
        assert np.array_equal(fleet, multi)

    def test_predict_group_refuses_mixed_topologies(self):
        base = ExperimentSpec("vector_addition", sizes=(1000,))
        with pytest.raises(ValueError, match="topology"):
            predict_group([base, base.with_overrides(topology=HETERO)])


class TestServingTopologyKey:
    def _request(self, spec):
        return PredictionRequest(spec=spec, future=Future(), mode="predict")

    def test_key_carries_the_topology_discriminator_last(self):
        spec = ExperimentSpec(
            "vector_addition", sizes=(1000,), topology=HETERO
        )
        key = self._request(spec).key
        assert key == (
            "vector_addition", spec.preset, "predict",
            HETERO.topology_hash(),
        )

    def test_specs_differing_only_in_topology_do_not_coalesce(self):
        plain = ExperimentSpec("vector_addition", sizes=(1000,))
        fleet = plain.with_overrides(topology=HETERO)
        assert self._request(plain).key != self._request(fleet).key
        assert self._request(plain).key[:3] == self._request(fleet).key[:3]


class TestDevicePoolTopology:
    def test_homogeneous_topology_matches_the_plain_pool(self):
        config = DeviceConfig.gtx650()
        plain = DevicePool(4, config=config, contention=0.5)
        fleet = DevicePool(
            config=config, topology=Topology.homogeneous(4, 0.5)
        )
        words = 100_000
        assert fleet.link_stretch == plain.link_stretch
        for device in range(4):
            assert fleet.transfer_duration(
                words, TransferDirection.HOST_TO_DEVICE, device=device
            ) == plain.transfer_duration(
                words, TransferDirection.HOST_TO_DEVICE, device=device
            )

    def test_per_socket_stretches(self):
        pool = DevicePool(topology=NUMA_P2P)
        # Socket 0: two devices at contention 0.5 → stretch 1.5.
        assert pool.device_stretch(0) == pytest.approx(1.5)
        assert pool.device_stretch(1) == pytest.approx(1.5)
        # Socket 1: two devices at contention 0.2 → stretch 1.2.
        assert pool.device_stretch(2) == pytest.approx(1.2)
        assert pool.link_stretch == pytest.approx(1.5)

    def test_device_count_must_agree_with_the_topology(self):
        with pytest.raises(ValueError):
            DevicePool(3, topology=NUMA_P2P)
        assert DevicePool(4, topology=NUMA_P2P).num_devices == 4
        with pytest.raises(ValueError):
            DevicePool()
        with pytest.raises(TypeError):
            DevicePool(topology="fleet")

    def test_transfers_use_their_own_socket_stretch(self):
        pool = DevicePool(topology=NUMA_P2P)
        words = 50_000
        fast = pool.transfer_duration(
            words, TransferDirection.HOST_TO_DEVICE, device=2
        )
        slow = pool.transfer_duration(
            words, TransferDirection.HOST_TO_DEVICE, device=0
        )
        assert fast < slow
        pool.add_transfer(0, words, TransferDirection.HOST_TO_DEVICE)
        pool.add_transfer(2, words, TransferDirection.HOST_TO_DEVICE)
        spans = pool.device_makespans()
        assert spans[0] == pytest.approx(slow)
        assert spans[2] == pytest.approx(fast)

    def test_render_mentions_the_sockets(self):
        pool = DevicePool(topology=NUMA_P2P)
        assert "2 socket(s)" in pool.render()


class TestShardedRunsWithTopology:
    def test_vector_addition_outputs_correct_on_the_hetero_fleet(self):
        algorithm = VectorAddition()
        inputs = algorithm.generate_input(10_000, seed=3)
        expected = algorithm.reference(inputs)
        device = GPUDevice(DeviceConfig.gtx650())
        result = algorithm.run_sharded(device, inputs, topology=HETERO)
        assert result.device_count == HETERO.num_devices
        assert np.array_equal(result.outputs["C"], expected["C"])

    def test_reduction_outputs_correct_on_the_hetero_fleet(self):
        algorithm = Reduction()
        inputs = algorithm.generate_input(50_000, seed=4)
        expected = algorithm.reference(inputs)
        result = algorithm.observe_sharded(50_000, seed=4, topology=HETERO)
        assert result.outputs["Ans"][0] == expected["Ans"][0]
        assert result.device_count == 3

    def test_faster_device_gets_the_wider_shard(self):
        algorithm = VectorAddition()
        result = algorithm.observe_sharded(120_000, topology=HETERO)
        pool = result.pool
        weights = HETERO.throughputs()
        bounds = plan_bounds(120_000, weights)
        widths = [hi - lo for lo, hi in bounds]
        assert widths[1] == max(widths)  # the gtx980 carries the most
        assert all(s > 0 for s in pool.device_makespans())

    def test_idle_devices_skipped_without_error(self):
        algorithm = VectorAddition()
        result = algorithm.observe_sharded(
            2, topology=Topology.homogeneous(5), seed=0
        )
        expected = algorithm.reference(algorithm.generate_input(2, seed=0))
        assert np.array_equal(result.outputs["C"], expected["C"])
        spans = result.device_makespans
        assert len(spans) == 5
        assert sum(1 for s in spans if s > 0) == 2

    def test_homogeneous_topology_run_matches_plain_run(self):
        algorithm = VectorAddition()
        plain = algorithm.observe_sharded(
            100_000, devices=4, contention=0.3, seed=1
        )
        fleet = algorithm.observe_sharded(
            100_000, topology=Topology.homogeneous(4, 0.3), seed=1
        )
        assert fleet.makespan_s == plain.makespan_s
        assert fleet.serial_time_s == plain.serial_time_s
