"""Tests for the vectorized batch cost engine (``repro.core.batch``).

The contract under test is *bit-for-bit* parity: for every built-in backend
family the batch path must produce exactly the series the scalar path
produces (``rtol=0, atol=0``), across the paper's algorithms, randomized
synthetic sweeps, and the degeneracy cases (``chunks=1``, ``devices=1``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import MatrixMultiplication, Reduction, VectorAddition
from repro.core.backends import (
    all_backends_support_batch,
    backend_supports_batch,
    evaluate_backends_batch,
    get_backend,
    make_async_backend,
    make_backend,
    make_sharded_backend,
    register_backend,
    unregister_backend,
)
from repro.core.batch import (
    MetricsBatch,
    agpu_time_batch,
    batch_breakdown,
    blocks_per_mp_grid,
    gpu_cost_batch,
    overlapped_cost_batch,
    perfect_cost_batch,
    sharded_cost_batch,
    swgpu_cost_batch,
)
from repro.core.comparison import AGPUAnalysis, SWGPUCostModel
from repro.core.cost import ATGPUCostModel
from repro.core.backends import overlapped_cost
from repro.core.metrics import AlgorithmMetrics, CapacityError, RoundMetrics
from repro.core.prediction import predict_sweep, predict_sweep_batch
from repro.core.presets import GTX_650, GTX_980
from repro.core.sharding import sharded_gpu_cost

ALGORITHMS = [VectorAddition, Reduction, MatrixMultiplication]
FAMILY_BACKENDS = (
    "atgpu", "swgpu", "perfect", "agpu", "atgpu-async", "atgpu-multi",
)

#: Small per-algorithm sweeps that still exercise multi-round metrics.
SWEEP_SIZES = {
    "vector_addition": [1_000, 100_000, 1_000_000, 2_500_000],
    "reduction": [1 << 10, 1 << 14, 1 << 18, 1 << 20],
    "matrix_multiplication": [32, 64, 96, 256],
}


def random_metrics(rng: np.random.Generator, machine, rounds: int
                   ) -> AlgorithmMetrics:
    """Synthetic multi-round metrics with awkward values (zeros, fractions)."""
    out = []
    for _ in range(rounds):
        inward = float(rng.choice([0.0, rng.integers(1, 10_000),
                                   float(rng.uniform(0.5, 999.5))]))
        outward = float(rng.choice([0.0, rng.integers(1, 5_000),
                                    float(rng.uniform(0.5, 99.5))]))
        out.append(RoundMetrics(
            time=float(rng.uniform(0.0, 50.0)),
            io_blocks=float(rng.integers(0, 10_000)),
            inward_words=inward,
            outward_words=outward,
            inward_transactions=int(rng.integers(1, 4)) if inward > 0 else 0,
            outward_transactions=int(rng.integers(1, 4)) if outward > 0 else 0,
            global_words=float(rng.integers(0, machine.G)),
            shared_words_per_mp=float(rng.choice(
                [0.0, float(rng.integers(1, machine.M)),
                 float(rng.uniform(0.1, machine.M / 2))]
            )),
            thread_blocks=int(rng.integers(1, 5_000)),
        ))
    return AlgorithmMetrics(out, name="random")


class TestMetricsBatchPacking:
    def test_shapes_and_padding(self):
        algo = Reduction()
        sizes = SWEEP_SIZES["reduction"]
        batch = algo.compile_batch(sizes, preset=GTX_650)
        assert batch.sizes == tuple(sizes)
        assert batch.num_sizes == len(sizes)
        depths = [len(algo.metrics(n, GTX_650.machine)) for n in sizes]
        assert batch.depth == max(depths)
        assert list(batch.round_counts) == depths
        # Padding: mask zero, neutral rounds beyond each column's depth.
        for col, depth in enumerate(depths):
            assert np.all(batch.mask[:depth, col] == 1.0)
            assert np.all(batch.mask[depth:, col] == 0.0)
            assert np.all(batch.time[depth:, col] == 0.0)
            assert np.all(batch.thread_blocks[depth:, col] == 1.0)

    def test_materializes_per_size_metrics_on_demand(self):
        algo = VectorAddition()
        batch = algo.compile_batch([100, 200], preset=GTX_650)
        # Grid-compiled batches build no per-size metrics eagerly; the
        # scalar-fallback view materialises them from the grid columns.
        assert batch.metrics == ()
        assert batch.grid is not None
        materialized = batch.materialized_metrics()
        assert len(materialized) == 2
        assert all(isinstance(m, AlgorithmMetrics) for m in materialized)
        for n, m in zip([100, 200], materialized):
            scalar = algo.metrics(n, GTX_650.machine)
            assert len(m) == len(scalar)
            for got, want in zip(m, scalar):
                assert got.time == want.time
                assert got.io_blocks == want.io_blocks
                assert got.inward_words == want.inward_words
                assert got.outward_words == want.outward_words
                assert got.inward_transactions == want.inward_transactions
                assert got.outward_transactions == want.outward_transactions
                assert got.global_words == want.global_words
                assert got.shared_words_per_mp == want.shared_words_per_mp
                assert got.thread_blocks == want.thread_blocks

    def test_from_metrics_retains_per_size_metrics(self):
        algo = VectorAddition()
        machine = GTX_650.machine
        sizes = [100, 200]
        batch = MetricsBatch.from_metrics(
            sizes, [algo.metrics(n, machine) for n in sizes]
        )
        assert len(batch.metrics) == 2
        assert batch.materialized_metrics() == batch.metrics

    def test_select_columns(self):
        algo = Reduction()
        sizes = SWEEP_SIZES["reduction"]
        batch = algo.compile_batch(sizes, preset=GTX_650)
        sub = batch.select([2, 0])
        assert sub.sizes == (sizes[2], sizes[0])
        direct = algo.compile_batch([sizes[2], sizes[0]], preset=GTX_650)
        assert np.array_equal(
            gpu_cost_batch(sub, GTX_650.machine, GTX_650.parameters,
                           GTX_650.occupancy),
            gpu_cost_batch(direct, GTX_650.machine, GTX_650.parameters,
                           GTX_650.occupancy),
        )

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            MetricsBatch.compile("demo", [], lambda n: None)
        batch = VectorAddition().compile_batch([100], preset=GTX_650)
        with pytest.raises(ValueError):
            batch.select([])
        with pytest.raises(ValueError):
            MetricsBatch.from_metrics([1, 2], list(batch.metrics))

    def test_validate_against_matches_scalar(self, machine):
        algo = VectorAddition()
        fits = algo.compile_batch([1000], preset=GTX_650)
        # The fixture machine has G = 2^22 words; 3n words at n = 4M won't fit.
        metrics = algo.metrics(4_000_000, GTX_650.machine)
        batch = MetricsBatch.from_metrics([4_000_000], [metrics])
        with pytest.raises(CapacityError):
            batch.validate_against(machine)
        assert not batch.runs_on(machine)
        assert fits.runs_on(GTX_650.machine)

    def test_blocks_per_mp_grid_matches_scalar_epsilon_logic(self):
        from repro.core.occupancy import blocks_per_multiprocessor

        values = np.array([[0.0, 0.1, 7.0], [3.0, 10.0, 9.999999999]])
        grid = blocks_per_mp_grid(10, values, 16)
        for index in np.ndindex(values.shape):
            expected = blocks_per_multiprocessor(10, float(values[index]), 16)
            assert grid[index] == expected
        with pytest.raises(ValueError, match="cannot run"):
            blocks_per_mp_grid(10, np.array([11.0]), 16)


class TestBackendParity:
    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    @pytest.mark.parametrize("preset", [GTX_650, GTX_980],
                             ids=lambda p: p.name)
    def test_every_family_bitwise_equal(self, algorithm_cls, preset):
        algo = algorithm_cls()
        sizes = SWEEP_SIZES[algo.name]
        scalar = algo.predict_sweep(sizes, preset=preset,
                                    backends=FAMILY_BACKENDS, path="scalar")
        batch = algo.predict_sweep(sizes, preset=preset,
                                   backends=FAMILY_BACKENDS, path="batch")
        for name in FAMILY_BACKENDS:
            assert np.array_equal(
                scalar.series_for(name), batch.series_for(name)
            ), f"series mismatch for backend {name}"
        assert np.array_equal(scalar.predicted_transfer_proportions,
                              batch.predicted_transfer_proportions)
        assert np.array_equal(scalar.transfer_costs, batch.transfer_costs)
        assert np.array_equal(scalar.kernel_costs, batch.kernel_costs)

    def test_section_iv_sweeps_identical_with_rtol_zero(self):
        """The acceptance criterion: paper sweeps, every default backend."""
        for algorithm_cls in ALGORITHMS:
            algo = algorithm_cls()
            sizes = algo.default_sizes()
            scalar = algo.predict_sweep(sizes, path="scalar")
            batch = algo.predict_sweep(sizes, path="batch")
            for name in ("atgpu", "swgpu", "perfect"):
                assert np.allclose(scalar.series_for(name),
                                   batch.series_for(name), rtol=0, atol=0)

    def test_randomized_metrics_parity(self, machine, parameters, occupancy):
        rng = np.random.default_rng(7)
        for trial in range(10):
            metrics_list = [
                random_metrics(rng, machine, rounds=int(rng.integers(1, 8)))
                for _ in range(int(rng.integers(1, 12)))
            ]
            sizes = list(range(1, len(metrics_list) + 1))
            batch = MetricsBatch.from_metrics(sizes, metrics_list)
            atgpu = ATGPUCostModel(machine, parameters, occupancy)
            swgpu = SWGPUCostModel(machine, parameters, occupancy)
            chunks = int(rng.integers(1, 6))
            devices = int(rng.integers(1, 6))
            contention = float(rng.choice([0.0, 0.25, 1.0]))
            expectations = {
                "gpu": (
                    gpu_cost_batch(batch, machine, parameters, occupancy),
                    [atgpu.gpu_cost(m) for m in metrics_list],
                ),
                "perfect": (
                    perfect_cost_batch(batch, machine, parameters, occupancy),
                    [atgpu.perfect_cost(m) for m in metrics_list],
                ),
                "swgpu": (
                    swgpu_cost_batch(batch, machine, parameters, occupancy),
                    [swgpu.gpu_cost(m) for m in metrics_list],
                ),
                "agpu": (
                    agpu_time_batch(batch, machine, parameters, occupancy),
                    [AGPUAnalysis.from_metrics(m).time for m in metrics_list],
                ),
                "async": (
                    overlapped_cost_batch(batch, machine, parameters,
                                          occupancy, chunks=chunks),
                    [overlapped_cost(m, machine, parameters, occupancy,
                                     chunks=chunks) for m in metrics_list],
                ),
                "sharded": (
                    sharded_cost_batch(batch, machine, parameters, occupancy,
                                       devices=devices,
                                       contention=contention),
                    [sharded_gpu_cost(m, machine, parameters, occupancy,
                                      devices=devices, contention=contention)
                     for m in metrics_list],
                ),
            }
            for family, (got, expected) in expectations.items():
                assert np.array_equal(got, np.array(expected)), (
                    f"trial {trial}: {family} diverged from the scalar model"
                )

    def test_async_chunks_one_degenerates_to_serial(self, machine, parameters,
                                                    occupancy):
        rng = np.random.default_rng(11)
        metrics_list = [random_metrics(rng, machine, 3) for _ in range(5)]
        batch = MetricsBatch.from_metrics(range(1, 6), metrics_list)
        pipelined = overlapped_cost_batch(batch, machine, parameters,
                                          occupancy, chunks=1)
        # Bit-for-bit against the scalar async model (the batch contract) ...
        assert np.array_equal(
            pipelined,
            [overlapped_cost(m, machine, parameters, occupancy, chunks=1)
             for m in metrics_list],
        )
        # ... and numerically the serial GPU-cost (the degeneracy the scalar
        # model itself guarantees only up to addition order).
        assert np.allclose(
            pipelined, gpu_cost_batch(batch, machine, parameters, occupancy),
            rtol=1e-12,
        )

    def test_sharded_single_device_degenerates_to_serial(self, machine,
                                                         parameters,
                                                         occupancy):
        rng = np.random.default_rng(13)
        metrics_list = [random_metrics(rng, machine, 4) for _ in range(5)]
        batch = MetricsBatch.from_metrics(range(1, 6), metrics_list)
        serial = gpu_cost_batch(batch, machine, parameters, occupancy)
        for contention in (0.0, 0.5, 1.0):
            assert np.array_equal(
                sharded_cost_batch(batch, machine, parameters, occupancy,
                                   devices=1, contention=contention),
                serial,
            )

    def test_breakdown_components_match_scalar(self, machine, parameters,
                                               occupancy):
        algo = Reduction()
        sizes = SWEEP_SIZES["reduction"]
        batch = algo.compile_batch(sizes, preset=GTX_650)
        model = ATGPUCostModel(GTX_650.machine, GTX_650.parameters,
                               GTX_650.occupancy)
        vec = batch_breakdown(batch, GTX_650.machine, GTX_650.parameters,
                              GTX_650.occupancy, use_occupancy=True)
        for col, n in enumerate(sizes):
            scalar = model.breakdown(algo.metrics(n, GTX_650.machine),
                                     use_occupancy=True)
            assert vec.inward_transfer[col] == scalar.inward_transfer
            assert vec.outward_transfer[col] == scalar.outward_transfer
            assert vec.compute[col] == scalar.compute
            assert vec.io[col] == scalar.io
            assert vec.synchronisation[col] == scalar.synchronisation
            assert vec.total[col] == scalar.total
            assert vec.transfer_proportion[col] == scalar.transfer_proportion


class TestPredictSweepPaths:
    def test_invalid_path_rejected(self):
        with pytest.raises(ValueError, match="path must be one of"):
            VectorAddition().predict_sweep([100], path="vectorised")

    def test_auto_uses_batch_for_builtin_backends(self):
        prediction = VectorAddition().predict_sweep([100, 200], path="auto")
        assert not prediction.reports
        assert prediction.transfers is not None
        assert prediction.kernels is not None
        # The built-in trio is always available, as on the scalar path.
        for name in ("atgpu", "swgpu", "perfect"):
            assert name in prediction.backend_names()

    def test_scalar_path_keeps_reports(self):
        prediction = VectorAddition().predict_sweep([100, 200], path="scalar")
        assert len(prediction.reports) == 2

    def test_auto_falls_back_to_scalar_for_custom_backend(self):
        custom = make_backend(
            "test-batch-fallback", "2x",
            lambda metrics, machine, params, occ:
                2.0 * get_backend("atgpu").cost(metrics, machine, params, occ),
        )
        register_backend(custom)
        try:
            assert not backend_supports_batch(custom)
            assert not all_backends_support_batch(("atgpu",
                                                   "test-batch-fallback"))
            prediction = VectorAddition().predict_sweep(
                [1000, 2000], backends=("atgpu", "test-batch-fallback"),
            )
            # Fallback: the scalar path ran, reports included.
            assert len(prediction.reports) == 2
            assert np.allclose(
                prediction.series_for("test-batch-fallback"),
                2.0 * prediction.series_for("atgpu"),
            )
        finally:
            unregister_backend("test-batch-fallback")

    def test_forced_batch_path_serves_custom_backend_scalarly(self):
        custom = make_backend(
            "test-batch-fallback2", "2x",
            lambda metrics, machine, params, occ:
                2.0 * get_backend("atgpu").cost(metrics, machine, params, occ),
        )
        register_backend(custom)
        try:
            prediction = VectorAddition().predict_sweep(
                [1000, 2000], backends=("atgpu", "test-batch-fallback2"),
                path="batch",
            )
            assert not prediction.reports
            assert np.allclose(
                prediction.series_for("test-batch-fallback2"),
                2.0 * prediction.series_for("atgpu"),
            )
        finally:
            unregister_backend("test-batch-fallback2")

    def test_batch_prediction_supports_figure_accessors(self):
        algo = VectorAddition()
        sizes = [1000, 2000, 4000]
        scalar = algo.predict_sweep(sizes, path="scalar")
        batch = algo.predict_sweep(sizes, path="batch")
        assert set(batch.normalised()) == set(scalar.normalised())
        assert np.array_equal(batch.transfer_costs, scalar.transfer_costs)
        assert np.array_equal(batch.kernel_costs, scalar.kernel_costs)

    def test_custom_batch_backend_used_by_auto(self):
        custom = make_backend(
            "test-batch-vec", "vec",
            lambda metrics, machine, params, occ: float(len(metrics)),
            evaluate_batch=lambda batch, machine, params, occ:
                np.asarray(batch.round_counts, dtype=float),
        )
        register_backend(custom)
        try:
            assert backend_supports_batch(custom)
            prediction = Reduction().predict_sweep(
                [1 << 10, 1 << 14], backends=("atgpu", "test-batch-vec"),
            )
            assert not prediction.reports  # batch path taken
            expected = [len(Reduction().metrics(n, GTX_650.machine))
                        for n in (1 << 10, 1 << 14)]
            assert list(prediction.series_for("test-batch-vec")) == expected
        finally:
            unregister_backend("test-batch-vec")


class TestEvaluateBackendsBatch:
    def test_shape_validated(self, machine, parameters, occupancy):
        bad = make_backend(
            "test-batch-bad-shape", "bad",
            lambda metrics, m, p, o: 0.0,
            evaluate_batch=lambda batch, m, p, o: np.zeros(99),
        )
        batch = VectorAddition().compile_batch([100, 200], preset=GTX_650)
        with pytest.raises(ValueError, match="shape"):
            bad.batch_cost(batch, machine, parameters, occupancy)

    def test_batch_cost_requires_evaluator(self, machine, parameters,
                                           occupancy):
        plain = make_backend("test-batch-plain", "plain",
                             lambda metrics, m, p, o: 1.0)
        batch = VectorAddition().compile_batch([100], preset=GTX_650)
        with pytest.raises(ValueError, match="no batch evaluation"):
            plain.batch_cost(batch, machine, parameters, occupancy)

    def test_fallback_requires_retained_metrics(self):
        plain = make_backend("test-batch-plain2", "plain",
                             lambda metrics, m, p, o: 1.0)
        register_backend(plain)
        try:
            full = VectorAddition().compile_batch([100, 200], preset=GTX_650)
            stripped = MetricsBatch(
                algorithm=full.algorithm, sizes=full.sizes,
                round_counts=full.round_counts, mask=full.mask,
                time=full.time, io_blocks=full.io_blocks,
                inward_words=full.inward_words,
                outward_words=full.outward_words,
                inward_transactions=full.inward_transactions,
                outward_transactions=full.outward_transactions,
                shared_words_per_mp=full.shared_words_per_mp,
                thread_blocks=full.thread_blocks,
                max_global_words=full.max_global_words,
                max_shared_words=full.max_shared_words,
                metrics=(),
            )
            values = evaluate_backends_batch(
                ("test-batch-plain2",), full, GTX_650.machine,
                GTX_650.parameters, GTX_650.occupancy,
            )
            assert np.array_equal(values["test-batch-plain2"], [1.0, 1.0])
            with pytest.raises(ValueError, match="retains no per-size"):
                evaluate_backends_batch(
                    ("test-batch-plain2",), stripped, GTX_650.machine,
                    GTX_650.parameters, GTX_650.occupancy,
                )
        finally:
            unregister_backend("test-batch-plain2")

    def test_async_and_shard_variants_parity(self):
        """The STREAM_CHUNK_SWEEP / SHARD_COUNT_SWEEP backend variants.

        Variants may already be registered (e.g. by the benchmark harness in
        the same pytest run), so only names this test adds are removed.
        """
        variants = [make_async_backend(chunks) for chunks in (1, 4, 16)]
        variants += [make_sharded_backend(devices, contention=0.5)
                     for devices in (4, 8)]
        names, added = [], []
        for backend in variants:
            try:
                get_backend(backend.name)
            except KeyError:
                register_backend(backend)
                added.append(backend.name)
            names.append(backend.name)
        try:
            algo = Reduction()
            sizes = SWEEP_SIZES["reduction"]
            scalar = algo.predict_sweep(sizes, backends=names, path="scalar")
            batch = algo.predict_sweep(sizes, backends=names, path="batch")
            for name in names:
                assert np.array_equal(scalar.series_for(name),
                                      batch.series_for(name)), name
        finally:
            for name in added:
                unregister_backend(name)


class TestSweepPredictionSeriesFields:
    def test_transfers_must_align_with_sizes(self):
        from repro.core.prediction import SweepPrediction

        with pytest.raises(ValueError, match="transfers"):
            SweepPrediction(
                algorithm="demo", sizes=[1, 2],
                series={"atgpu": [1.0, 2.0]},
                transfers=[1.0],
            )

    def test_predict_sweep_batch_entry_point(self):
        algo = VectorAddition()
        sizes = [1000, 2000]
        batch = algo.compile_batch(sizes, preset=GTX_650)
        prediction = predict_sweep_batch(
            algo.name, batch, GTX_650.machine, GTX_650.parameters,
            GTX_650.occupancy,
        )
        direct = predict_sweep(
            algo.name, sizes, lambda n: algo.metrics(n, GTX_650.machine),
            GTX_650.machine, GTX_650.parameters, GTX_650.occupancy,
            path="scalar",
        )
        for name in ("atgpu", "swgpu", "perfect"):
            assert np.array_equal(prediction.series_for(name),
                                  direct.series_for(name))
