"""Integration tests for the experiment harness (figures, tables, runner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentRunner,
    all_figures,
    figure3,
    figure4,
    figure5,
    figure6,
    render_figure,
    render_figures,
    render_summary,
    summary_statistics,
    table1,
)
from repro.workloads import PAPER_SWEEPS, SMALL_SWEEPS, Sweep, sweep_for
from repro.workloads.generators import (
    random_binary_vector,
    random_csr_matrix,
    random_int_vector,
    random_square_matrix,
    transfer_size_sweep,
)


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(scale="small")


@pytest.fixture(scope="module")
def comparisons(runner):
    return runner.run_paper_evaluation()


class TestWorkloads:
    def test_paper_sweeps_match_section_iv(self):
        assert PAPER_SWEEPS["vector_addition"].sizes[-1] == 10_000_000
        assert PAPER_SWEEPS["reduction"].sizes == [1 << e for e in range(16, 27)]
        assert PAPER_SWEEPS["matrix_multiplication"].sizes[0] == 32
        assert PAPER_SWEEPS["matrix_multiplication"].sizes[-1] == 1024

    def test_small_sweeps_are_smaller(self):
        for name in PAPER_SWEEPS:
            assert max(SMALL_SWEEPS[name].sizes) < max(PAPER_SWEEPS[name].sizes)

    def test_sweep_for_lookup(self):
        assert sweep_for("reduction", "paper") is PAPER_SWEEPS["reduction"]
        with pytest.raises(KeyError):
            sweep_for("nonexistent")
        with pytest.raises(ValueError):
            sweep_for("reduction", scale="huge")

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            Sweep("bad", [3, 2, 1])
        with pytest.raises(ValueError):
            Sweep("bad", [])

    def test_generators_are_deterministic(self):
        assert np.array_equal(random_int_vector(100, seed=7), random_int_vector(100, seed=7))
        assert np.array_equal(random_binary_vector(50, seed=1), random_binary_vector(50, seed=1))
        assert set(np.unique(random_binary_vector(1000))) <= {0, 1}
        assert random_square_matrix(8, seed=2).shape == (8, 8)

    def test_csr_generator_structure(self):
        csr = random_csr_matrix(100, nnz_per_row=4, seed=0)
        assert csr["rowptr"][-1] == 400
        assert csr["values"].size == csr["colidx"].size == 400

    def test_transfer_size_sweep_monotone(self):
        sizes = transfer_size_sweep(1 << 10, 1 << 20, points=8)
        assert np.all(np.diff(sizes) > 0)


class TestTable1:
    def test_table1_matrix(self):
        table = table1()
        assert table["Host/Device Data Transfer"]["ATGPU"]
        assert not table["Host/Device Data Transfer"]["SWGPU"]
        assert not table["Global Memory Limit"]["AGPU"]

    def test_table1_rendered(self):
        text = table1(rendered=True)
        assert "ATGPU" in text and "Host/Device Data Transfer" in text


class TestRunner:
    def test_runner_rejects_unknown_scale(self):
        with pytest.raises(ValueError):
            ExperimentRunner(scale="huge")

    def test_run_algorithm_caches(self, runner):
        from repro.algorithms import VectorAddition
        first = runner.run_algorithm(VectorAddition())
        second = runner.run_algorithm(VectorAddition())
        assert first is second

    def test_paper_evaluation_covers_three_algorithms(self, comparisons):
        assert set(comparisons) == {
            "vector_addition", "reduction", "matrix_multiplication"}

    def test_comparison_alignment(self, comparisons):
        for comparison in comparisons.values():
            assert comparison.prediction.sizes == comparison.observation.sizes


class TestFigures:
    def test_figure3_series(self, comparisons):
        figures = figure3(comparisons["vector_addition"])
        assert set(figures) == {"3a", "3b", "3c"}
        assert set(figures["3a"].series) == {"ATGPU", "SWGPU"}
        assert set(figures["3b"].series) == {"Total", "Kernel"}
        assert set(figures["3c"].series) == {"ATGPU", "SWGPU", "Total", "Kernel"}
        for curve in figures["3c"].series.values():
            assert curve.min() >= 0.0 and curve.max() <= 1.0

    def test_figure3_atgpu_grows_faster_than_swgpu(self, comparisons):
        series = figure3(comparisons["vector_addition"])["3a"].series
        atgpu_growth = series["ATGPU"][-1] / series["ATGPU"][0]
        swgpu_growth = series["SWGPU"][-1] / series["SWGPU"][0]
        assert series["ATGPU"][-1] > series["SWGPU"][-1]
        assert atgpu_growth > 1.0 and swgpu_growth > 1.0

    def test_figure4_series(self, comparisons):
        figures = figure4(comparisons["reduction"])
        assert set(figures) == {"4a", "4b", "4c"}
        total = figures["4b"].series["Total"]
        kernel = figures["4b"].series["Kernel"]
        assert np.all(total >= kernel)

    def test_figure5_series(self, comparisons):
        figures = figure5(comparisons["matrix_multiplication"])
        assert set(figures) == {"5a", "5b"}
        # Matmul: total and kernel times are close (transfer is minor) at the top end.
        total = figures["5b"].series["Total"][-1]
        kernel = figures["5b"].series["Kernel"][-1]
        assert kernel / total > 0.5

    def test_figure6_series(self, comparisons):
        figures = figure6(comparisons)
        assert set(figures) == {"6a", "6b", "6c"}
        for series in figures.values():
            for curve in series.series.values():
                assert np.all(curve >= 0.0) and np.all(curve <= 1.0)

    def test_figure6_ordering_matches_paper(self, comparisons):
        # At the largest size of each sweep the paper's ordering holds: vector
        # addition is the most transfer-bound, matrix multiplication the least.
        # (Averages over the reduced sweeps are dominated by fixed overheads at
        # tiny matrix sizes, so the comparison uses the top of each sweep.)
        figures = figure6(comparisons)
        vecadd = figures["6a"].series["ΔE (Observed)"][-1]
        reduction = figures["6b"].series["ΔE (Observed)"][-1]
        matmul = figures["6c"].series["ΔE (Observed)"][-1]
        assert vecadd > reduction > matmul
        assert figures["6c"].series["ΔE (Observed)"][0] > matmul  # Δ falls with n

    def test_all_figures_complete(self, comparisons):
        figures = all_figures(comparisons)
        assert set(figures) == {"3a", "3b", "3c", "4a", "4b", "4c", "5a", "5b",
                                "6a", "6b", "6c"}

    def test_figure6_requires_all_algorithms(self, comparisons):
        partial = {"vector_addition": comparisons["vector_addition"]}
        with pytest.raises(KeyError):
            figure6(partial)

    def test_render_figure_text(self, comparisons):
        figures = figure3(comparisons["vector_addition"])
        text = render_figure(figures["3a"])
        assert "Figure 3a" in text and "ATGPU" in text
        assert render_figures(figures).count("Figure 3") == 3


class TestSummaryStatistics:
    def test_summary_reproduces_qualitative_claims(self, comparisons):
        summaries = summary_statistics(comparisons)
        vecadd = summaries["vector_addition"]
        matmul = summaries["matrix_multiplication"]
        # Vector addition is transfer-dominated; matmul is not (Section IV-D).
        assert vecadd.measured_transfer_share > 0.5
        assert matmul.measured_swgpu_capture > vecadd.measured_swgpu_capture
        # The ATGPU prediction of Δ is accurate for the transfer-bound case.
        assert vecadd.measured_delta_accuracy < 0.15
        # Shape scores are meaningful similarity values.
        for summary in summaries.values():
            assert 0.5 <= summary.atgpu_shape_score <= 1.0
            assert 0.0 <= summary.swgpu_shape_score <= 1.0

    def test_render_summary(self, comparisons):
        text = render_summary(summary_statistics(comparisons))
        assert "vector_addition" in text and "ΔE avg (meas)" in text
