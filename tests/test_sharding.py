"""Tests for the multi-GPU sharding subsystem: the sharded transfer/cost
models, the ``atgpu-multi`` backend, the simulator :class:`DevicePool`, the
sharded algorithm execution modes, and the scaling figures/tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import Reduction, VectorAddition
from repro.algorithms.base import ShardedRunResult
from repro.core.backends import (
    backend_names,
    get_backend,
    make_sharded_backend,
    register_backend,
    unregister_backend,
)
from repro.core.cost import ATGPUCostModel
from repro.core.metrics import RoundMetrics
from repro.core.presets import GTX_650
from repro.core.sharding import (
    ShardedCostModel,
    ShardedTransferModel,
    largest_shard,
    shard_sizes,
    sharded_gpu_cost,
)
from repro.core.transfer import BoyerTransferModel, TransferDirection
from repro.experiments import (
    ExperimentSpec,
    Session,
    figure_scaling,
    figure_shard_sweep,
    render_scaling_summary,
    scaling_summary,
)
from repro.simulator.config import DeviceConfig
from repro.simulator.device import GPUDevice
from repro.simulator.device_pool import DevicePool
from repro.workloads.sweeps import SHARD_COUNT_SWEEP


@pytest.fixture
def round_metrics() -> RoundMetrics:
    """A transfer-heavy round similar to vector addition's."""
    return RoundMetrics(
        time=3.0,
        io_blocks=96.0,
        inward_words=2_000_000.0,
        outward_words=1_000_000.0,
        inward_transactions=2,
        outward_transactions=1,
        global_words=3_000_000.0,
        shared_words_per_mp=96.0,
        thread_blocks=31_250,
    )


class TestShardHelpers:
    def test_largest_shard_integral_words(self):
        assert largest_shard(10.0, 3) == 4.0
        assert largest_shard(10.0, 1) == 10.0
        assert largest_shard(10.0, 10) == 1.0
        assert largest_shard(10.0, 16) == 1.0
        assert largest_shard(0.0, 4) == 0.0

    def test_largest_shard_fractional_words_split_evenly(self):
        assert largest_shard(10.5, 2) == 5.25

    def test_shard_sizes_near_equal_with_idle_tail(self):
        assert shard_sizes(10, 3) == [4, 3, 3]
        assert shard_sizes(2, 4) == [1, 1, 0, 0]
        assert sum(shard_sizes(1234, 7)) == 1234

    def test_largest_shard_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            largest_shard(-1.0, 2)
        with pytest.raises(ValueError):
            largest_shard(4.0, 0)


class TestShardedTransferModel:
    def test_one_device_matches_boyer_bit_for_bit(self, round_metrics):
        boyer = BoyerTransferModel(alpha=1.5e-5, beta=1.25e-9)
        for contention in (0.0, 0.3, 1.0):
            sharded = ShardedTransferModel(
                alpha=1.5e-5, beta=1.25e-9, devices=1, contention=contention
            )
            assert sharded.inward_cost(round_metrics) == boyer.inward_cost(round_metrics)
            assert sharded.outward_cost(round_metrics) == boyer.outward_cost(round_metrics)
            assert sharded.round_cost(round_metrics) == boyer.round_cost(round_metrics)

    def test_full_contention_recovers_serial_streaming(self, round_metrics):
        boyer = BoyerTransferModel(alpha=1.5e-5, beta=1.25e-9)
        for devices in (2, 3, 8):
            sharded = ShardedTransferModel(
                alpha=1.5e-5, beta=1.25e-9, devices=devices, contention=1.0
            )
            assert sharded.round_cost(round_metrics) == pytest.approx(
                boyer.round_cost(round_metrics)
            )

    def test_independent_links_monotone_non_increasing_in_devices(
        self, round_metrics
    ):
        costs = [
            ShardedTransferModel(
                alpha=1.5e-5, beta=1.25e-9, devices=p
            ).round_cost(round_metrics)
            for p in (1, 2, 3, 4, 8, 16, 64)
        ]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_cost_monotone_non_decreasing_in_contention(self, round_metrics):
        costs = [
            ShardedTransferModel(
                alpha=1.5e-5, beta=1.25e-9, devices=4, contention=c
            ).round_cost(round_metrics)
            for c in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert all(a <= b for a, b in zip(costs, costs[1:]))

    def test_alpha_charged_once_per_logical_transaction(self):
        model = ShardedTransferModel(alpha=1.0, beta=0.0, devices=8)
        assert model.cost(1000.0, transactions=3) == 3.0

    def test_positive_words_require_a_transaction(self):
        model = ShardedTransferModel(alpha=1.0, beta=1.0, devices=2)
        with pytest.raises(ValueError):
            model.cost(10.0, transactions=0)

    def test_contention_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError):
            ShardedTransferModel(alpha=0.0, beta=0.0, devices=2, contention=1.5)


class TestShardedCostModel:
    @pytest.mark.parametrize(
        "algorithm_cls, n",
        [(VectorAddition, 1_000_000), (Reduction, 1 << 18)],
    )
    def test_one_device_reproduces_serial_gpu_cost_exactly(
        self, algorithm_cls, n
    ):
        preset = GTX_650
        metrics = algorithm_cls().metrics(n, preset.machine)
        serial = ATGPUCostModel(
            preset.machine, preset.parameters, preset.occupancy
        ).gpu_cost(metrics)
        sharded = ShardedCostModel(
            preset.machine, preset.parameters, preset.occupancy, devices=1
        ).gpu_cost(metrics)
        assert sharded == serial

    def test_cost_non_increasing_in_devices_on_independent_links(self):
        preset = GTX_650
        metrics = VectorAddition().metrics(2_000_000, preset.machine)
        costs = [
            ShardedCostModel(
                preset.machine, preset.parameters, preset.occupancy, devices=p
            ).gpu_cost(metrics)
            for p in SHARD_COUNT_SWEEP.sizes
        ]
        assert all(a >= b for a, b in zip(costs, costs[1:]))
        assert costs[-1] < costs[0]

    def test_speedup_bounded_by_device_count(self):
        preset = GTX_650
        metrics = VectorAddition().metrics(2_000_000, preset.machine)
        for devices in (2, 4, 8):
            model = ShardedCostModel(
                preset.machine, preset.parameters, preset.occupancy,
                devices=devices,
            )
            speedup = model.scaling_speedup(metrics)
            assert 1.0 <= speedup <= devices + 1e-9

    def test_contention_degrades_scaling(self):
        preset = GTX_650
        metrics = VectorAddition().metrics(2_000_000, preset.machine)
        free = ShardedCostModel(
            preset.machine, preset.parameters, preset.occupancy,
            devices=4, contention=0.0,
        ).gpu_cost(metrics)
        contended = ShardedCostModel(
            preset.machine, preset.parameters, preset.occupancy,
            devices=4, contention=1.0,
        ).gpu_cost(metrics)
        assert contended > free

    def test_straggler_blocks_and_device_times(self):
        preset = GTX_650
        model = ShardedCostModel(
            preset.machine, preset.parameters, preset.occupancy, devices=3
        )
        assert model.straggler_blocks(10) == 4
        round_metrics = VectorAddition().metrics(
            1_000_000, preset.machine
        )[0]
        times = model.device_round_times(round_metrics)
        assert len(times) == 3
        assert max(times) == times[0]

    def test_requires_occupancy(self):
        preset = GTX_650
        with pytest.raises(ValueError):
            ShardedCostModel(preset.machine, preset.parameters, None)


class TestShardedBackend:
    def test_default_backend_registered(self):
        assert "atgpu-multi" in backend_names()
        backend = get_backend("atgpu-multi")
        assert backend.label == "ATGPU (multi)"

    def test_single_device_backend_matches_atgpu_bit_for_bit(self):
        preset = GTX_650
        metrics = VectorAddition().metrics(3_000_000, preset.machine)
        serial = get_backend("atgpu").cost(
            metrics, preset.machine, preset.parameters, preset.occupancy
        )
        single = make_sharded_backend(1).cost(
            metrics, preset.machine, preset.parameters, preset.occupancy
        )
        assert single == serial

    def test_variant_naming(self):
        assert make_sharded_backend().name == "atgpu-multi"
        assert make_sharded_backend(4).name == "atgpu-multi4"
        assert make_sharded_backend(4, contention=0.5).name == "atgpu-multi4-c0.5"

    def test_backend_selectable_through_session(self, tmp_path):
        session = Session(cache_dir=tmp_path)
        spec = ExperimentSpec(
            "vector_addition",
            sizes=(100_000, 200_000),
            backends=("atgpu", "swgpu", "perfect", "atgpu-multi"),
        )
        result = session.run(spec)
        serial = result.backend_series("atgpu")
        sharded = result.backend_series("atgpu-multi")
        assert np.all(sharded < serial)
        # The cached result round-trips the sharded series through JSON.
        fresh = Session(cache_dir=tmp_path)
        cached = fresh.run(spec)
        assert fresh.cache_hits == 1
        assert np.array_equal(cached.backend_series("atgpu-multi"), sharded)

    def test_registered_variant_usable_and_unregisterable(self):
        backend = register_backend(make_sharded_backend(4))
        try:
            preset = GTX_650
            metrics = Reduction().metrics(1 << 16, preset.machine)
            quad = get_backend("atgpu-multi4").cost(
                metrics, preset.machine, preset.parameters, preset.occupancy
            )
            serial = get_backend("atgpu").cost(
                metrics, preset.machine, preset.parameters, preset.occupancy
            )
            assert quad < serial
        finally:
            unregister_backend(backend.name)


class TestDevicePool:
    def test_single_device_pool_is_serial(self):
        pool = DevicePool(1)
        pool.add_transfer(0, 1000, TransferDirection.HOST_TO_DEVICE)
        pool.add_host(0, 1e-4, name="sync")
        pool.add_transfer(0, 1000, TransferDirection.DEVICE_TO_HOST)
        assert pool.makespan_s == pytest.approx(pool.serial_time_s)
        assert pool.sharding_speedup == pytest.approx(1.0)

    def test_devices_proceed_concurrently(self):
        pool = DevicePool(2)
        a = pool.add_transfer(0, 10_000, TransferDirection.HOST_TO_DEVICE)
        b = pool.add_transfer(1, 10_000, TransferDirection.HOST_TO_DEVICE)
        assert a.start_s == b.start_s == 0.0
        assert pool.makespan_s == pytest.approx(a.duration_s)
        assert pool.serial_time_s == pytest.approx(2 * a.duration_s)

    def test_contention_stretches_streaming_not_latency(self):
        config = DeviceConfig.gtx650()
        free = DevicePool(4, config=config, contention=0.0)
        contended = DevicePool(4, config=config, contention=1.0)
        words = 100_000
        base = free.transfer_duration(words, TransferDirection.HOST_TO_DEVICE)
        stretched = contended.transfer_duration(
            words, TransferDirection.HOST_TO_DEVICE
        )
        latency = config.transfer_latency_s
        assert contended.link_stretch == pytest.approx(4.0)
        assert stretched == pytest.approx(latency + (base - latency) * 4.0)

    def test_zero_word_transfer_stays_free(self):
        pool = DevicePool(4, contention=1.0)
        assert pool.transfer_duration(0, TransferDirection.HOST_TO_DEVICE) == 0.0

    def test_pool_rejects_bad_device_index(self):
        pool = DevicePool(2)
        with pytest.raises(IndexError):
            pool.timeline(2)

    def test_failed_submission_leaves_pool_statistics_untouched(self):
        pool = DevicePool(2)
        with pytest.raises(IndexError):
            pool.add_transfer(7, 1000, TransferDirection.HOST_TO_DEVICE)
        with pytest.raises(IndexError):
            pool.add_host(7, 1e-4)
        assert pool.serial_time_s == 0.0
        assert pool.transfer_engine.records == []
        assert pool.makespan_s == 0.0

    def test_straggler_and_render(self):
        pool = DevicePool(2)
        pool.add_transfer(0, 100, TransferDirection.HOST_TO_DEVICE)
        pool.add_transfer(1, 10_000, TransferDirection.HOST_TO_DEVICE, label="big")
        assert pool.straggler == 1
        text = pool.render()
        assert "device 0" in text and "device 1" in text and "big" in text

    def test_engine_busy_times_aggregate_across_devices(self):
        pool = DevicePool(2)
        pool.add_transfer(0, 1000, TransferDirection.HOST_TO_DEVICE)
        pool.add_transfer(1, 1000, TransferDirection.HOST_TO_DEVICE)
        busy = pool.engine_busy_times()
        assert busy["h2d"] == pytest.approx(2 * pool.transfer_duration(
            1000, TransferDirection.HOST_TO_DEVICE
        ))


class TestShardedRuns:
    @pytest.mark.parametrize("devices", [1, 2, 3, 5])
    def test_vector_addition_sharded_outputs_correct(self, devices):
        algorithm = VectorAddition()
        inputs = algorithm.generate_input(10_000, seed=3)
        expected = algorithm.reference(inputs)
        device = GPUDevice(DeviceConfig.gtx650())
        result = algorithm.run_sharded(device, inputs, devices=devices)
        assert isinstance(result, ShardedRunResult)
        assert result.device_count == devices
        assert np.array_equal(result.outputs["C"], expected["C"])

    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_reduction_sharded_outputs_correct(self, devices):
        algorithm = Reduction()
        inputs = algorithm.generate_input(50_000, seed=4)
        expected = algorithm.reference(inputs)
        device = GPUDevice(DeviceConfig.gtx650())
        result = algorithm.run_sharded(device, inputs, devices=devices)
        assert result.outputs["Ans"][0] == expected["Ans"][0]

    def test_supports_sharding_flags(self):
        assert VectorAddition().supports_sharding
        assert Reduction().supports_sharding
        from repro.algorithms import MatrixMultiplication

        assert not MatrixMultiplication().supports_sharding
        with pytest.raises(NotImplementedError):
            MatrixMultiplication().run_sharded(
                GPUDevice(DeviceConfig.gtx650()), {}
            )

    def test_sharding_speeds_up_the_simulated_run(self):
        algorithm = VectorAddition()
        serial = algorithm.observe_sharded(200_000, devices=1, seed=0)
        sharded = algorithm.observe_sharded(200_000, devices=4, seed=0)
        assert sharded.makespan_s < serial.makespan_s
        assert sharded.sharding_speedup > 2.0

    def test_more_devices_than_elements_leaves_devices_idle(self):
        algorithm = VectorAddition()
        result = algorithm.observe_sharded(3, devices=8, seed=0)
        spans = result.device_makespans
        assert len(spans) == 8
        assert sum(1 for s in spans if s > 0) == 3

    def test_model_and_simulator_agree_on_scaling_direction(self):
        """Model cost and pool makespan move the same way in P."""
        preset = GTX_650
        algorithm = VectorAddition()
        n = 400_000
        metrics = algorithm.metrics(n, preset.machine)
        counts = (1, 2, 4)
        model_costs = [
            sharded_gpu_cost(
                metrics, preset.machine, preset.parameters, preset.occupancy,
                devices=p,
            )
            for p in counts
        ]
        sim_spans = [
            algorithm.observe_sharded(n, devices=p, seed=0).makespan_s
            for p in counts
        ]
        model_direction = [np.sign(b - a) for a, b in zip(model_costs, model_costs[1:])]
        sim_direction = [np.sign(b - a) for a, b in zip(sim_spans, sim_spans[1:])]
        assert model_direction == sim_direction

    def test_kernel_timing_memoised_across_equal_shards(self, monkeypatch):
        """Equal-sized shards reuse one simulated timing instead of P."""
        from repro.simulator.functional import FunctionalEngine

        calls = []
        original = FunctionalEngine.execute_sampled

        def counting(self, kernel):
            calls.append(kernel.grid_size())
            return original(self, kernel)

        monkeypatch.setattr(FunctionalEngine, "execute_sampled", counting)
        algorithm = VectorAddition()
        device = GPUDevice(DeviceConfig.gtx650())
        inputs = algorithm.generate_input(64_000, seed=0)
        algorithm.run_sharded(device, inputs, devices=8)
        # chunk_bounds yields at most two distinct shard sizes.
        assert len(calls) <= 2

    def test_contention_slows_the_simulated_pool(self):
        algorithm = VectorAddition()
        free = algorithm.observe_sharded(200_000, devices=4, contention=0.0)
        contended = algorithm.observe_sharded(200_000, devices=4, contention=1.0)
        assert contended.makespan_s > free.makespan_s

    def test_serial_baseline_is_uncontended(self):
        """The serial comparison time must not inherit the link stretch,
        or sharding_speedup would cancel contention entirely."""
        algorithm = VectorAddition()
        free = algorithm.observe_sharded(200_000, devices=4, contention=0.0)
        contended = algorithm.observe_sharded(200_000, devices=4, contention=1.0)
        assert contended.serial_time_s == pytest.approx(free.serial_time_s)
        assert contended.sharding_speedup < free.sharding_speedup
        # Transfer-bound workload on a fully shared link: sharding buys
        # little, as the analytic model predicts.
        assert contended.sharding_speedup < 2.0


class TestScalingFiguresAndTables:
    @pytest.fixture(scope="class")
    def scaling_results(self):
        session = Session()
        specs = [
            ExperimentSpec(
                name,
                scale="small",
                backends=("atgpu", "swgpu", "perfect", "atgpu-multi"),
            )
            for name in ("vector_addition", "reduction")
        ]
        return session.run_many(specs)

    def test_figure_scaling_from_result_set(self, scaling_results):
        series = figure_scaling(scaling_results.get("vector_addition"))
        assert set(series.series) == {"Serial", "Sharded", "Speedup Δ"}
        assert np.all(series.series["Speedup Δ"] > 1.0)
        rows = series.as_rows()
        assert len(rows) == len(series.sizes)

    def test_figure_shard_sweep_direct(self):
        series = figure_shard_sweep("vector_addition", 1_000_000)
        assert series.sizes == list(SHARD_COUNT_SWEEP.sizes)
        speedups = series.series["Speedup Δ"]
        assert speedups[0] == pytest.approx(1.0)
        assert all(a <= b + 1e-12 for a, b in zip(speedups, speedups[1:]))

    def test_figure_shard_sweep_with_contention_flattens(self):
        free = figure_shard_sweep("vector_addition", 1_000_000, contention=0.0)
        jammed = figure_shard_sweep("vector_addition", 1_000_000, contention=1.0)
        assert jammed.series["Sharded"][-1] > free.series["Sharded"][-1]

    def test_scaling_summary_renders_from_result_set(self, scaling_results):
        summaries = scaling_summary(scaling_results)
        assert set(summaries) == {"vector_addition", "reduction"}
        for summary in summaries.values():
            assert summary.mean_speedup > 1.0
            assert 0.0 < summary.saving_share < 1.0
        text = render_scaling_summary(summaries)
        assert "vector_addition" in text
        assert "saving share" in text
