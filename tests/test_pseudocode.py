"""Tests for the ATGPU pseudocode DSL: variables, validation, analysis, execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import MatrixMultiplication, Reduction, VectorAddition
from repro.core.machine import ATGPUMachine
from repro.pseudocode import (
    Compute,
    GlobalToShared,
    If,
    KernelLaunch,
    Loop,
    MissingSemanticsError,
    NamingError,
    Program,
    ProgramInterpreter,
    Round,
    Scope,
    SharedCompute,
    SharedToGlobal,
    TransferIn,
    TransferOut,
    ValidationError,
    analyse_program,
    global_var,
    host_var,
    is_valid,
    render_program,
    scope_of_name,
    shared_var,
    validate_program,
)
from repro.simulator import DeviceConfig, GPUDevice


class TestVariables:
    def test_scope_inference(self):
        assert scope_of_name("A") is Scope.HOST
        assert scope_of_name("a") is Scope.GLOBAL
        assert scope_of_name("_a") is Scope.SHARED

    def test_bad_names_rejected(self):
        with pytest.raises(NamingError):
            scope_of_name("1abc")
        with pytest.raises(NamingError):
            scope_of_name("")

    def test_declaration_checks_convention(self):
        host_var("Input", 10)
        global_var("input", 10)
        shared_var("_input", 10)
        with pytest.raises(NamingError):
            host_var("input", 10)
        with pytest.raises(NamingError):
            global_var("_input", 10)
        with pytest.raises(NamingError):
            shared_var("Input", 10)


class TestStatements:
    def test_transfer_scope_rules(self):
        TransferIn("a", "A", words=10)
        with pytest.raises(ValueError):
            TransferIn("A", "a", words=10)
        TransferOut("A", "a", words=10)
        with pytest.raises(ValueError):
            TransferOut("a", "A", words=10)

    def test_global_access_scope_rules(self):
        GlobalToShared("_s", "a")
        with pytest.raises(ValueError):
            GlobalToShared("s", "a")
        SharedToGlobal("a", "_s")
        with pytest.raises(ValueError):
            SharedToGlobal("_a", "_s")

    def test_if_counts_body_operations(self):
        statement = If("lane == 0", body=(Compute(operations=4),), operations=1)
        assert statement.operation_count({}) == 5

    def test_loop_multiplies_body(self):
        loop = Loop(count=3, body=(Compute(operations=2), GlobalToShared("_s", "a")))
        assert loop.operation_count({}) == 3 * 3
        assert loop.io_blocks_per_mp({}) == 3

    def test_loop_with_callable_count(self):
        loop = Loop(count=lambda p: p["n"] / p["b"], body=(Compute(),))
        assert loop.iterations({"n": 64, "b": 8}) == 8

    def test_kernel_launch_aggregates(self):
        launch = KernelLaunch(
            grid_blocks=4,
            body=(GlobalToShared("_s", "a"), Compute(), SharedToGlobal("c", "_s")),
            shared_declarations=(shared_var("_s", 16),),
        )
        assert launch.grid({}) == 4
        assert launch.time({}) == 3
        assert launch.io_blocks({}) == 2 * 4
        assert launch.shared_words_per_block() == 16


def _vecadd_program(n=64, b=4):
    return VectorAddition().build_pseudocode(n, ATGPUMachine(p=2 * b, b=b, M=256, G=4096))


class TestValidation:
    def test_paper_programs_are_valid(self, machine):
        for algo, n in ((VectorAddition(), 1024), (Reduction(), 4096),
                        (MatrixMultiplication(), 64)):
            program = algo.build_pseudocode(n, machine)
            validate_program(program, machine)

    def test_undeclared_variable_detected(self):
        program = Program(
            name="broken",
            variables=(host_var("A", 4), global_var("a", 4), shared_var("_s", 4)),
            rounds=(Round(
                transfers_in=(TransferIn("a", "A", words=4),),
                launches=(KernelLaunch(1, (GlobalToShared("_s", "ghost"),)),),
            ),),
        )
        with pytest.raises(ValidationError, match="ghost"):
            validate_program(program)

    def test_global_memory_limit_enforced(self, tiny_machine):
        program = _vecadd_program(n=100_000, b=tiny_machine.b)
        assert not is_valid(program, tiny_machine)

    def test_nested_if_rejected(self):
        nested = If("outer", body=(If("inner", body=(Compute(),)),))
        program = Program(
            name="nested",
            variables=(global_var("a", 4), shared_var("_s", 4), host_var("A", 4)),
            rounds=(Round(
                transfers_in=(TransferIn("a", "A", words=4),),
                launches=(KernelLaunch(1, (nested,)),),
            ),),
        )
        with pytest.raises(ValidationError, match="single conditional"):
            validate_program(program)


class TestAnalyzer:
    def test_zero_word_transfer_statements_are_markers(self):
        """A W statement moving no words at these parameters is not charged
        a transaction, matching the core model's zero-word-event rule."""
        program = Program(
            name="markers",
            variables=(host_var("A", 4), host_var("B", 4),
                       global_var("a", 4), shared_var("_s", 4)),
            rounds=(Round(
                transfers_in=(
                    TransferIn("a", "A", words=4),
                    TransferIn("a", "B", words=0),
                ),
                launches=(KernelLaunch(1, (GlobalToShared("_s", "a"),)),),
                transfers_out=(TransferOut("A", "a", words=0),),
            ),),
        )
        metrics = analyse_program(program)
        assert metrics.total_inward_words == 4
        assert metrics[0].inward_transactions == 1
        assert metrics[0].outward_transactions == 0

    def test_vector_addition_analysis_matches_hand_counts(self, machine):
        n = 6400
        program = VectorAddition().build_pseudocode(n, machine)
        metrics = analyse_program(program, machine)
        hand = VectorAddition().metrics(n, machine)
        assert metrics.num_rounds == hand.num_rounds == 1
        assert metrics.total_io_blocks == hand.total_io_blocks
        assert metrics.total_inward_words == hand.total_inward_words == 2 * n
        assert metrics.total_outward_words == hand.total_outward_words == n
        assert metrics.total_transfer_transactions == hand.total_transfer_transactions == 3
        assert metrics.max_global_words == hand.max_global_words == 3 * n
        assert metrics[0].thread_blocks == hand[0].thread_blocks

    def test_reduction_analysis_round_structure(self, machine):
        n = 32 * 32 * 4
        program = Reduction().build_pseudocode(n, machine)
        metrics = analyse_program(program, machine)
        hand = Reduction().metrics(n, machine)
        assert metrics.num_rounds == hand.num_rounds
        assert metrics.total_inward_words == n
        assert metrics.total_outward_words == 1
        assert metrics[0].thread_blocks == hand[0].thread_blocks

    def test_matmul_analysis_counts(self, machine):
        n = 128
        program = MatrixMultiplication().build_pseudocode(n, machine)
        metrics = analyse_program(program, machine)
        hand = MatrixMultiplication().metrics(n, machine)
        assert metrics.total_inward_words == hand.total_inward_words == 2 * n * n
        assert metrics.total_io_blocks == hand.total_io_blocks
        assert metrics[0].thread_blocks == hand[0].thread_blocks == (n // 32) ** 2

    def test_analysis_respects_machine_capacity(self, tiny_machine):
        program = _vecadd_program(n=100_000, b=tiny_machine.b)
        with pytest.raises(Exception):
            analyse_program(program, tiny_machine)


class TestInterpreter:
    def test_vector_addition_executes_correctly(self, tiny_config):
        n = 50
        device = GPUDevice(tiny_config)
        program = _vecadd_program(n=n, b=tiny_config.warp_width)
        inputs = {"A": np.arange(n), "B": np.arange(n) * 10}
        result = ProgramInterpreter(device).execute(program, inputs)
        assert np.array_equal(result.outputs["C"], inputs["A"] + inputs["B"])
        assert result.total_time_s > 0
        assert 0 <= result.observed_transfer_proportion <= 1
        assert result.transfer_time_s > 0 and result.kernel_time_s > 0

    def test_missing_host_input_raises(self, tiny_config):
        program = _vecadd_program(n=16, b=tiny_config.warp_width)
        with pytest.raises(KeyError):
            ProgramInterpreter(GPUDevice(tiny_config)).execute(program, {"A": np.arange(16)})

    def test_analysis_only_program_cannot_execute(self, tiny_config):
        # The reduction pseudocode carries no executable semantics.
        program = Reduction().build_pseudocode(64, tiny_config.abstract_machine())
        with pytest.raises(MissingSemanticsError):
            ProgramInterpreter(GPUDevice(tiny_config)).execute(
                program, {"A": np.arange(64)})


class TestRenderer:
    def test_render_contains_operators_and_wrapper(self, machine):
        text = render_program(VectorAddition().build_pseudocode(1024, machine))
        assert "W" in text
        assert "<==" in text
        assert "<-" in text
        assert "for all mp_rho in MP" in text

    def test_render_reduction_shows_rounds(self, machine):
        text = render_program(Reduction().build_pseudocode(4096, machine))
        assert "round" in text
        assert "Transfer answer" in text or "Transfer output" in text
