"""Shared fixtures for the ATGPU reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core.cost import CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.occupancy import OccupancyModel
from repro.core.presets import GTX_650
from repro.simulator.config import DeviceConfig
from repro.simulator.device import GPUDevice


@pytest.fixture
def machine() -> ATGPUMachine:
    """A small abstract machine used throughout the unit tests."""
    return ATGPUMachine(p=64, b=32, M=12288, G=1 << 22)


@pytest.fixture
def tiny_machine() -> ATGPUMachine:
    """A 4-wide machine matching the tiny simulator device."""
    return ATGPUMachine(p=8, b=4, M=256, G=4096)


@pytest.fixture
def parameters() -> CostParameters:
    """Cost parameters with easily-checked round numbers."""
    return CostParameters(gamma=1e6, lam=10.0, sigma=1e-3, alpha=1e-4, beta=1e-6)


@pytest.fixture
def occupancy() -> OccupancyModel:
    """A two-MP occupancy model with an 8-block hardware limit."""
    return OccupancyModel(physical_mps=2, hardware_block_limit=8)


@pytest.fixture
def gtx650_preset():
    """The default (paper testbed) preset."""
    return GTX_650


@pytest.fixture
def tiny_config() -> DeviceConfig:
    """The tiny simulator configuration (warp width 4, fully functional)."""
    return DeviceConfig.tiny_test_device()


@pytest.fixture
def tiny_device(tiny_config) -> GPUDevice:
    """A fresh tiny simulated device."""
    return GPUDevice(tiny_config)


@pytest.fixture
def gtx650_device() -> GPUDevice:
    """A fresh GTX-650-like simulated device."""
    return GPUDevice(DeviceConfig.gtx650())
