"""Tests for the classical parallel-model substrate (PRAM, BSP, BSPRAM, PEM)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.models import (
    AGPU_DESCRIPTION,
    ATGPU_DESCRIPTION,
    BSPMachine,
    BSPRAM,
    BSPRAMSuperstep,
    ModelFeature,
    PEMMachine,
    PRAM,
    PRAMStep,
    PRAMVariant,
    SWGPU_DESCRIPTION,
    Superstep,
    all_model_descriptions,
    consistency_with_paper_table,
    extended_feature_matrix,
    gpu_suitability_ranking,
    render_extended_table,
)


class TestPRAM:
    def test_cost_counts_steps_and_work(self):
        pram = PRAM(processors=4)
        cost = pram.cost([PRAMStep(operations=2), PRAMStep(operations=3)])
        assert cost.steps == 2
        assert cost.work == 4 * 5
        assert cost.span == 2

    def test_erew_rejects_concurrent_reads(self):
        pram = PRAM(processors=4, variant=PRAMVariant.EREW)
        with pytest.raises(ValueError, match="read"):
            pram.cost([PRAMStep(reads=(1, 1))])

    def test_crew_allows_concurrent_reads_but_not_writes(self):
        pram = PRAM(processors=4, variant=PRAMVariant.CREW)
        pram.cost([PRAMStep(reads=(1, 1))])
        with pytest.raises(ValueError, match="write"):
            pram.cost([PRAMStep(writes=(2, 2))])

    def test_crcw_allows_everything(self):
        pram = PRAM(processors=4, variant=PRAMVariant.CRCW)
        pram.cost([PRAMStep(reads=(1, 1), writes=(2, 2))])

    def test_brent_bound(self):
        pram = PRAM(processors=8)
        assert pram.brent_time(work=80, span=3) == pytest.approx(13.0)

    def test_reduction_span_is_logarithmic(self):
        pram = PRAM(processors=8)
        assert pram.reduction_span(1) == 0
        assert pram.reduction_span(2) == 1
        assert pram.reduction_span(1024) == 10

    def test_description_misses_gpu_features(self):
        assert not PRAM(4).supports(ModelFeature.MEMORY_HIERARCHY)
        assert not PRAM(4).supports(ModelFeature.HOST_DEVICE_TRANSFER)


class TestBSP:
    def test_superstep_cost_formula(self):
        bsp = BSPMachine(processors=4, g=2.0, L=50.0)
        assert bsp.superstep_cost(Superstep(local_work=10, h_relation=5)) == 10 + 10 + 50

    def test_cost_itemisation(self):
        bsp = BSPMachine(processors=4, g=2.0, L=50.0)
        cost = bsp.cost([Superstep(10, 5), Superstep(20, 0)])
        assert cost.computation == 30
        assert cost.communication == 10
        assert cost.synchronisation == 100
        assert cost.total == 140

    def test_reduction_cost_scales_with_processors(self):
        small = BSPMachine(processors=2, g=1.0, L=10.0).reduction_cost(1000)
        large = BSPMachine(processors=16, g=1.0, L=10.0).reduction_cost(1000)
        assert large.computation < small.computation

    def test_broadcast_cost_positive(self):
        bsp = BSPMachine(processors=4, g=1.5, L=20.0)
        assert bsp.broadcast_cost(100).total > 0

    @given(st.floats(min_value=0, max_value=100), st.floats(min_value=0, max_value=100))
    def test_cost_monotone_in_work(self, w1, w2):
        bsp = BSPMachine(processors=4, g=1.0, L=1.0)
        low, high = sorted([w1, w2])
        assert (bsp.superstep_cost(Superstep(high, 0))
                >= bsp.superstep_cost(Superstep(low, 0)))


class TestBSPRAM:
    def test_cost_uses_shared_traffic(self):
        machine = BSPRAM(processors=4, g=3.0, L=10.0)
        step = BSPRAMSuperstep(local_work=5, shared_reads=4, shared_writes=2)
        assert machine.superstep_cost(step) == 5 + 3 * 6 + 10

    def test_private_footprint_validation(self):
        machine = BSPRAM(processors=4, g=1.0, L=1.0, private_memory_words=100)
        with pytest.raises(ValueError):
            machine.validate_private_footprint(101)

    def test_matrix_multiply_cost_grows_with_n(self):
        machine = BSPRAM(processors=16, g=1.0, L=10.0, private_memory_words=1 << 22)
        assert machine.matrix_multiply_cost(256).total > machine.matrix_multiply_cost(64).total

    def test_description_includes_shared_memory(self):
        assert BSPRAM(4, 1.0, 1.0).supports(ModelFeature.SHARED_MEMORY)


class TestPEM:
    def test_cache_must_hold_a_block(self):
        with pytest.raises(ValueError):
            PEMMachine(processors=4, cache_words=16, block_words=32)

    def test_scan_io(self):
        pem = PEMMachine(processors=4, cache_words=1024, block_words=32)
        assert pem.scan_io(4096) == 32  # 128 blocks over 4 processors

    def test_reduction_complexity_components(self):
        pem = PEMMachine(processors=8, cache_words=1024, block_words=32)
        complexity = pem.reduction_complexity(1 << 16)
        assert complexity.parallel_io > 0
        assert complexity.parallel_computation >= 1 << 13

    def test_sort_io_exceeds_scan_io(self):
        pem = PEMMachine(processors=4, cache_words=4096, block_words=32)
        assert pem.sort_io(1 << 18) >= pem.scan_io(1 << 18)

    def test_matrix_multiply_io_cubic_growth(self):
        pem = PEMMachine(processors=4, cache_words=4096, block_words=32)
        assert pem.matrix_multiply_io(512) > 7 * pem.matrix_multiply_io(256)

    def test_block_transfers_feature(self):
        pem = PEMMachine(4, 1024, 32)
        assert pem.supports(ModelFeature.BLOCK_TRANSFERS)


class TestFeatureMatrix:
    def test_seven_models_described(self):
        names = [d.name for d in all_model_descriptions()]
        assert names == ["PRAM", "BSP", "BSPRAM", "PEM", "AGPU", "SWGPU", "ATGPU"]

    def test_only_atgpu_has_data_transfer(self):
        matrix = extended_feature_matrix()
        row = matrix[ModelFeature.HOST_DEVICE_TRANSFER.value]
        assert row["ATGPU"] is True
        assert sum(row.values()) == 1

    def test_extended_matrix_consistent_with_table1(self):
        assert consistency_with_paper_table()

    def test_atgpu_tops_suitability_ranking(self):
        ranking = gpu_suitability_ranking()
        assert ranking[0][0] == "ATGPU"
        scores = dict(ranking)
        assert scores["ATGPU"] > scores["SWGPU"]
        assert scores["ATGPU"] > scores["AGPU"]
        assert scores["AGPU"] > scores["PRAM"]

    def test_gpu_models_have_lockstep_groups(self):
        for description in (AGPU_DESCRIPTION, SWGPU_DESCRIPTION, ATGPU_DESCRIPTION):
            assert description.supports(ModelFeature.LOCKSTEP_GROUPS)

    def test_render_extended_table_subset(self):
        text = render_extended_table(["ATGPU", "PRAM"])
        assert "ATGPU" in text and "PRAM" in text and "BSP " not in text

    def test_render_extended_table_unknown_model(self):
        with pytest.raises(KeyError):
            render_extended_table(["NOPE"])
