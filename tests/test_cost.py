"""Unit tests for the cost functions, occupancy, transfer model and comparison."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.comparison import (
    AGPUAnalysis,
    FEATURE_ROWS,
    SWGPUCostModel,
    feature_count,
    model_feature_table,
    model_supports,
    render_feature_table,
)
from repro.core.cost import ATGPUCostModel, CostParameters
from repro.core.machine import ATGPUMachine
from repro.core.metrics import AlgorithmMetrics, RoundMetrics
from repro.core.occupancy import (
    OccupancyModel,
    blocks_per_multiprocessor,
    wave_count,
)
from repro.core.transfer import (
    BoyerTransferModel,
    TransferDirection,
    TransferEvent,
    TransferPlan,
)


def simple_metrics(time=10.0, io=4.0, inward=100.0, outward=50.0,
                   shared=32.0, blocks=8) -> AlgorithmMetrics:
    return AlgorithmMetrics([RoundMetrics(
        time=time, io_blocks=io, inward_words=inward, outward_words=outward,
        inward_transactions=1 if inward else 0,
        outward_transactions=1 if outward else 0,
        global_words=inward + outward, shared_words_per_mp=shared,
        thread_blocks=blocks,
    )], name="simple")


class TestBoyerTransferModel:
    def test_linear_cost(self):
        model = BoyerTransferModel(alpha=2.0, beta=0.5)
        assert model.cost(words=10, transactions=3) == 3 * 2.0 + 10 * 0.5

    def test_zero_words_costs_overhead_only(self):
        model = BoyerTransferModel(alpha=2.0, beta=0.5)
        assert model.cost(0, transactions=1) == 2.0

    def test_positive_words_require_a_transaction(self):
        model = BoyerTransferModel(alpha=2.0, beta=0.5)
        with pytest.raises(ValueError):
            model.cost(10, transactions=0)

    def test_round_costs_match_metrics(self):
        model = BoyerTransferModel(alpha=1.0, beta=0.1)
        metrics = simple_metrics()[0]
        assert model.inward_cost(metrics) == pytest.approx(1.0 + 0.1 * 100)
        assert model.outward_cost(metrics) == pytest.approx(1.0 + 0.1 * 50)
        assert model.round_cost(metrics) == pytest.approx(
            model.inward_cost(metrics) + model.outward_cost(metrics))

    def test_effective_bandwidth_increases_with_size(self):
        model = BoyerTransferModel(alpha=1.0, beta=0.001)
        assert model.effective_bandwidth(10_000) > model.effective_bandwidth(10)

    @given(st.floats(min_value=0, max_value=1e3), st.floats(min_value=0, max_value=1e3),
           st.integers(min_value=1, max_value=100), st.floats(min_value=0, max_value=1e6))
    def test_cost_monotone_in_words(self, alpha, beta, transactions, words):
        model = BoyerTransferModel(alpha=alpha, beta=beta)
        assert model.cost(words + 1, transactions) >= model.cost(words, transactions)


class TestTransferEvents:
    def test_positive_word_event_charges_one_transaction(self):
        model = BoyerTransferModel(alpha=1e-4, beta=1e-6)
        events = [TransferEvent(TransferDirection.HOST_TO_DEVICE, 100)]
        assert model.events_cost(events) == pytest.approx(1e-4 + 100 * 1e-6)

    def test_zero_word_events_are_free_markers(self):
        model = BoyerTransferModel(alpha=1e-4, beta=1e-6)
        marker = TransferEvent(TransferDirection.HOST_TO_DEVICE, 0)
        assert marker.is_marker
        assert model.events_cost([marker]) == 0.0
        # Markers do not change the cost of a mixed list either.
        real = TransferEvent(TransferDirection.DEVICE_TO_HOST, 50)
        assert model.events_cost([marker, real]) == model.events_cost([real])

    def test_events_cost_agrees_with_plan_transactions(self):
        model = BoyerTransferModel(alpha=1e-4, beta=1e-6)
        plan = TransferPlan.from_events([
            TransferEvent(TransferDirection.HOST_TO_DEVICE, 100, "a"),
            TransferEvent(TransferDirection.HOST_TO_DEVICE, 0, "marker"),
            TransferEvent(TransferDirection.DEVICE_TO_HOST, 50, "c"),
        ])
        from_counts = model.cost(
            plan.inward_words, plan.inward_transactions
        ) + model.cost(plan.outward_words, plan.outward_transactions)
        assert model.events_cost(plan.events) == pytest.approx(from_counts)

    def test_plan_transactions_exclude_markers(self):
        plan = TransferPlan.from_events([
            TransferEvent(TransferDirection.HOST_TO_DEVICE, 100),
            TransferEvent(TransferDirection.HOST_TO_DEVICE, 0),
            TransferEvent(TransferDirection.DEVICE_TO_HOST, 0),
        ])
        assert plan.inward_transactions == 1
        assert plan.outward_transactions == 0
        # Word totals still include every event (markers add nothing).
        assert plan.inward_words == 100
        assert plan.outward_words == 0


class TestTransferPlan:
    def test_plan_aggregates(self):
        plan = TransferPlan.from_events([
            TransferEvent(TransferDirection.HOST_TO_DEVICE, 100, "a"),
            TransferEvent(TransferDirection.HOST_TO_DEVICE, 200, "b"),
            TransferEvent(TransferDirection.DEVICE_TO_HOST, 50, "c"),
        ])
        assert plan.inward_words == 300
        assert plan.outward_words == 50
        assert plan.inward_transactions == 2
        assert plan.outward_transactions == 1
        assert plan.total_words() == 350

    def test_event_validation(self):
        with pytest.raises(ValueError):
            TransferEvent(TransferDirection.HOST_TO_DEVICE, -1)
        with pytest.raises(TypeError):
            TransferEvent("inward", 1)


class TestOccupancy:
    def test_blocks_per_mp_memory_limited(self):
        assert blocks_per_multiprocessor(1024, 100, 16) == 10

    def test_blocks_per_mp_hardware_limited(self):
        assert blocks_per_multiprocessor(1 << 20, 1, 16) == 16

    def test_blocks_per_mp_zero_shared_means_hardware_limit(self):
        assert blocks_per_multiprocessor(1024, 0, 8) == 8

    def test_blocks_per_mp_unrunnable_kernel(self):
        with pytest.raises(ValueError):
            blocks_per_multiprocessor(64, 100, 8)

    def test_blocks_per_mp_fractional_shared_words_no_float_floor_loss(self):
        # 10 / 0.1 is 99.999... in binary; a bare floor loses a resident
        # block the MP really has room for.
        assert blocks_per_multiprocessor(10, 0.1, 1000) == 100
        assert blocks_per_multiprocessor(3, 0.3, 1000) == 10
        assert blocks_per_multiprocessor(7, 0.7, 1000) == 10

    def test_blocks_per_mp_fractional_shared_words_still_floors(self):
        # Genuinely fractional ratios must still floor, not round up.
        assert blocks_per_multiprocessor(10, 3, 1000) == 3
        assert blocks_per_multiprocessor(10, 0.15, 1000) == 66

    def test_blocks_per_mp_huge_exact_ratio_not_inflated(self):
        # The epsilon must not grant blocks the MP has no memory for when
        # the ratio is a large exact integer.
        assert blocks_per_multiprocessor(
            2_000_000_000, 1, 10**12
        ) == 2_000_000_000

    def test_wave_count_ceiling(self):
        assert wave_count(100, 2, 8) == math.ceil(100 / 16)
        assert wave_count(16, 2, 8) == 1

    def test_occupancy_model_waves(self, occupancy):
        assert occupancy.waves(64, 1024, 100) == math.ceil(64 / (2 * 10))

    def test_occupancy_fraction_full(self, occupancy):
        assert occupancy.occupancy_fraction(32, 1024, 64) == pytest.approx(1.0)

    def test_occupancy_fraction_partial(self, occupancy):
        assert occupancy.occupancy_fraction(1, 1024, 64) < 0.1

    @given(st.integers(min_value=1, max_value=10_000),
           st.integers(min_value=1, max_value=32),
           st.integers(min_value=1, max_value=32))
    def test_waves_cover_all_blocks(self, blocks, mps, per_mp):
        waves = wave_count(blocks, mps, per_mp)
        assert waves * mps * per_mp >= blocks
        assert (waves - 1) * mps * per_mp < blocks


class TestCostParameters:
    def test_without_transfer_zeroes_alpha_beta(self, parameters):
        stripped = parameters.without_transfer()
        assert stripped.alpha == 0.0 and stripped.beta == 0.0
        assert stripped.gamma == parameters.gamma

    def test_scaled_preserves_cost_values(self, parameters, machine, occupancy):
        metrics = simple_metrics()
        base = ATGPUCostModel(machine, parameters, occupancy).gpu_cost(metrics)
        scaled = ATGPUCostModel(machine, parameters.scaled(1000.0), occupancy).gpu_cost(metrics)
        assert scaled == pytest.approx(base * 1000.0)

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            CostParameters(gamma=0.0, lam=1, sigma=1, alpha=1, beta=1)


class TestATGPUCostModel:
    def test_expression_one_closed_form(self, machine, parameters):
        metrics = simple_metrics(time=10, io=4, inward=100, outward=50)
        model = ATGPUCostModel(machine, parameters)
        expected = (
            (1 * parameters.alpha + 100 * parameters.beta)      # T_I
            + (10 + parameters.lam * 4) / parameters.gamma      # (t + λq)/γ
            + (1 * parameters.alpha + 50 * parameters.beta)     # T_O
            + parameters.sigma                                  # σ
        )
        assert model.perfect_cost(metrics) == pytest.approx(expected)

    def test_expression_two_scales_time_by_waves(self, machine, parameters, occupancy):
        metrics = simple_metrics(time=10, blocks=64, shared=100)
        model = ATGPUCostModel(machine, parameters, occupancy)
        waves = occupancy.waves(64, machine.M, 100)
        perfect = model.perfect_cost(metrics)
        gpu = model.gpu_cost(metrics)
        assert gpu - perfect == pytest.approx((waves - 1) * 10 / parameters.gamma)

    def test_gpu_cost_requires_occupancy(self, machine, parameters):
        model = ATGPUCostModel(machine, parameters)
        with pytest.raises(ValueError, match="Occupancy"):
            model.gpu_cost(simple_metrics())

    def test_breakdown_components_sum_to_total(self, machine, parameters, occupancy):
        model = ATGPUCostModel(machine, parameters, occupancy)
        breakdown = model.breakdown(simple_metrics(), use_occupancy=True)
        assert breakdown.total == pytest.approx(
            breakdown.transfer + breakdown.compute + breakdown.io
            + breakdown.synchronisation
        )
        assert 0.0 <= breakdown.transfer_proportion <= 1.0

    def test_transfer_cost_matches_boyer(self, machine, parameters, occupancy):
        model = ATGPUCostModel(machine, parameters, occupancy)
        metrics = simple_metrics(inward=300, outward=7)
        expected = (parameters.alpha + 300 * parameters.beta
                    + parameters.alpha + 7 * parameters.beta)
        assert model.transfer_cost(metrics) == pytest.approx(expected)

    def test_multi_round_cost_is_sum_of_rounds(self, machine, parameters, occupancy):
        rounds = [
            RoundMetrics(time=3, io_blocks=2, inward_words=10, inward_transactions=1),
            RoundMetrics(time=5, io_blocks=1, outward_words=1, outward_transactions=1),
        ]
        metrics = AlgorithmMetrics(rounds)
        model = ATGPUCostModel(machine, parameters, occupancy)
        total = model.gpu_cost(metrics)
        per_round = sum(model.round_cost(r, use_occupancy=True) for r in rounds)
        assert total == pytest.approx(per_round)

    def test_capacity_violation_raises(self, machine, parameters, occupancy):
        metrics = AlgorithmMetrics([RoundMetrics(
            time=1, io_blocks=1, global_words=machine.G + 1)])
        model = ATGPUCostModel(machine, parameters, occupancy)
        with pytest.raises(Exception):
            model.perfect_cost(metrics)

    @given(st.floats(min_value=0, max_value=1e4), st.floats(min_value=0, max_value=1e4))
    def test_cost_monotone_in_time_and_io(self, time, io, ):
        machine = ATGPUMachine(p=64, b=32, M=4096, G=1 << 20)
        params = CostParameters(gamma=1e6, lam=5, sigma=0.0, alpha=0.0, beta=0.0)
        model = ATGPUCostModel(machine, params)
        low = simple_metrics(time=time, io=io, inward=0, outward=0, shared=0)
        high = simple_metrics(time=time + 1, io=io + 1, inward=0, outward=0, shared=0)
        assert model.perfect_cost(high) >= model.perfect_cost(low)


class TestSWGPUAndAGPU:
    def test_swgpu_is_atgpu_minus_transfer(self, machine, parameters, occupancy):
        metrics = simple_metrics()
        atgpu = ATGPUCostModel(machine, parameters, occupancy)
        swgpu = SWGPUCostModel(machine, parameters, occupancy)
        assert swgpu.gpu_cost(metrics) == pytest.approx(
            atgpu.gpu_cost(metrics) - atgpu.transfer_cost(metrics))

    def test_swgpu_breakdown_has_no_transfer(self, machine, parameters, occupancy):
        swgpu = SWGPUCostModel(machine, parameters, occupancy)
        assert swgpu.breakdown(simple_metrics()).transfer == 0.0

    def test_agpu_analysis_projection(self, machine):
        metrics = simple_metrics()
        agpu = AGPUAnalysis.from_metrics(metrics)
        assert agpu.time == metrics.total_time
        assert agpu.io_blocks == metrics.total_io_blocks
        assert agpu.respects_shared_memory_limit(machine)

    def test_feature_table_matches_paper(self):
        table = model_feature_table()
        assert table["Host/Device Data Transfer"] == {
            "AGPU": False, "SWGPU": False, "ATGPU": True}
        assert table["Pseudocode"] == {"AGPU": True, "SWGPU": False, "ATGPU": True}
        assert table["Cost Function"] == {"AGPU": False, "SWGPU": True, "ATGPU": True}

    def test_atgpu_supports_every_feature(self):
        assert feature_count("ATGPU") == len(FEATURE_ROWS)
        assert feature_count("ATGPU") > feature_count("AGPU") > 0
        assert feature_count("ATGPU") > feature_count("SWGPU") > 0

    def test_model_supports_unknown_raises(self):
        with pytest.raises(KeyError):
            model_supports("ATGPU", "Teleportation")
        with pytest.raises(KeyError):
            model_supports("XYZ", "Pseudocode")

    def test_render_feature_table_contains_rows(self):
        text = render_feature_table(include_counts=True)
        for row in FEATURE_ROWS:
            assert row in text
        assert "Supported features" in text
