"""Bit-for-bit parity of the batched simulator and mergeable spec groups.

The batched observation paths (:mod:`repro.simulator.batch`) promise
**exact** float equality with the scalar per-size loops — every test here
compares with ``==``, never with a tolerance.  The mergeable group planner
(:func:`repro.experiments.session.plan_groups`) promises the same for
scattered union-batch predictions.
"""

from concurrent.futures import Future
from dataclasses import replace

import numpy as np
import pytest

from repro.algorithms import create
from repro.core.presets import get_preset, register_preset
from repro.core.topology import Topology
from repro.experiments import ExperimentSpec, mergeable, plan_groups, predict_group
from repro.serving.policies import FIFOPolicy
from repro.serving.queue import PredictionRequest, RequestQueue
from repro.simulator.batch import (
    ProbeDevice,
    simulate_sharded_sweep,
    simulate_streamed_sweep,
    simulate_sweep,
)
from repro.simulator.config import DeviceConfig
from repro.simulator.streams import StreamOpKind, StreamTimeline
from repro.simulator.streams import pipeline_makespan_grid

#: Every registered algorithm appears here by name so the SIM001 lint rule
#: (and a human reader) can see the parity net has no holes.
ALL_ALGORITHMS = [
    "vector_addition",
    "reduction",
    "prefix_sum",
    "stencil_1d",
    "matrix_multiplication",
    "histogram",
    "spmv",
]

#: Sweep sizes per device config; matmul sizes are matrix dims, so smaller.
SIZES = {"gtx650": [5, 33, 64], "tiny": [5, 33, 64]}
MATMUL_SIZES = {"gtx650": [32, 64], "tiny": [4, 8]}

CONFIGS = {
    "gtx650": DeviceConfig.gtx650,
    "tiny": DeviceConfig.tiny_test_device,
}


def sweep_sizes(name: str, config_name: str) -> list:
    table = MATMUL_SIZES if name == "matrix_multiplication" else SIZES
    return table[config_name]


class TestSweepParity:
    """simulate_sweep == the scalar observe_sweep loop, bit for bit."""

    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_batch_equals_scalar_bit_for_bit(self, name, config_name):
        algorithm = create(name)
        config = CONFIGS[config_name]()
        sizes = sweep_sizes(name, config_name)
        scalar = algorithm.observe_sweep(sizes, config=config, path="scalar")
        batch = algorithm.observe_sweep(sizes, config=config, path="batch")
        assert batch.total_times == scalar.total_times
        assert batch.kernel_times == scalar.kernel_times
        assert batch.transfer_times == scalar.transfer_times

    @pytest.mark.parametrize("name,sizes", [
        ("vector_addition", [200000, 300001]),
        ("reduction", [300000]),
        ("matrix_multiplication", [64, 96]),
    ])
    def test_sampled_path_parity(self, name, sizes):
        # Large grids take the representative-block sampled path; the
        # probe must replicate the scalar launch decision exactly.
        algorithm = create(name)
        scalar = algorithm.observe_sweep(sizes, path="scalar")
        batch = algorithm.observe_sweep(sizes, path="batch")
        assert batch.total_times == scalar.total_times

    def test_degenerate_single_size_sweep(self):
        algorithm = create("vector_addition")
        scalar = algorithm.observe_sweep([64], path="scalar")
        batch = algorithm.observe_sweep([64], path="batch")
        assert batch.total_times == scalar.total_times
        assert batch.sizes == scalar.sizes

    def test_auto_path_matches_scalar(self):
        algorithm = create("reduction")
        auto = algorithm.observe_sweep([5, 64])
        scalar = algorithm.observe_sweep([5, 64], path="scalar")
        assert auto.total_times == scalar.total_times

    def test_unknown_path_rejected(self):
        algorithm = create("vector_addition")
        with pytest.raises(ValueError, match="path"):
            algorithm.observe_sweep([64], path="warp")

    def test_simulate_sweep_direct(self):
        algorithm = create("histogram")
        observation = simulate_sweep(algorithm, [5, 33])
        assert observation.sizes == [5, 33]
        assert all(t > 0.0 for t in observation.total_times)


class TestStreamedShardedParity:
    """Plan-replay parity for the overlapped and sharded observations."""

    @pytest.mark.parametrize("chunks", [2, 3])
    @pytest.mark.parametrize("name", ["vector_addition", "reduction"])
    def test_streamed_parity(self, name, chunks):
        algorithm = create(name)
        sizes = [5, 33, 64, 1000, 4097]
        scalar = algorithm.observe_streamed_sweep(
            sizes, chunks=chunks, path="scalar"
        )
        batch = algorithm.observe_streamed_sweep(
            sizes, chunks=chunks, path="batch"
        )
        assert batch.makespans_s == scalar.makespans_s
        assert batch.serial_times_s == scalar.serial_times_s

    @pytest.mark.parametrize("name", ["vector_addition", "reduction"])
    def test_streamed_pinned_parity(self, name):
        algorithm = create(name)
        scalar = algorithm.observe_streamed_sweep(
            [33, 1000], pinned=True, path="scalar"
        )
        batch = algorithm.observe_streamed_sweep(
            [33, 1000], pinned=True, path="batch"
        )
        assert batch.makespans_s == scalar.makespans_s

    @pytest.mark.parametrize("kwargs", [
        {"devices": 2},
        {"devices": 3, "contention": 0.4},
        {"topology": Topology.homogeneous(3, contention=0.5)},
    ])
    @pytest.mark.parametrize("name", ["vector_addition", "reduction"])
    def test_sharded_parity(self, name, kwargs):
        algorithm = create(name)
        sizes = [5, 33, 64, 1000, 4097]
        scalar = algorithm.observe_sharded_sweep(
            sizes, path="scalar", **kwargs
        )
        batch = algorithm.observe_sharded_sweep(sizes, path="batch", **kwargs)
        assert batch.makespans_s == scalar.makespans_s
        assert batch.serial_times_s == scalar.serial_times_s
        assert batch.device_count == scalar.device_count

    def test_simulate_streamed_sweep_direct_parity(self):
        # The entry point itself (not just the observe_* façade) must be
        # bit-for-bit equal to the scalar per-size loop.
        algorithm = create("vector_addition")
        sizes = [33, 1000]
        batch = simulate_streamed_sweep(algorithm, sizes, chunks=3)
        per_size = [algorithm.observe_streamed(n, chunks=3) for n in sizes]
        assert batch.makespans_s == [r.makespan_s for r in per_size]
        assert batch.serial_times_s == [r.serial_time_s for r in per_size]

    def test_simulate_sharded_sweep_direct_parity(self):
        algorithm = create("reduction")
        sizes = [33, 1000]
        batch = simulate_sharded_sweep(
            algorithm, sizes, devices=3, contention=0.4
        )
        per_size = [
            algorithm.observe_sharded(n, devices=3, contention=0.4)
            for n in sizes
        ]
        assert batch.makespans_s == [r.makespan_s for r in per_size]
        assert batch.serial_times_s == [r.serial_time_s for r in per_size]

    def test_unsupported_plan_falls_back_to_scalar(self):
        # An algorithm without a stream plan hook loops per size on auto.
        from repro.algorithms.base import GPUAlgorithm
        from repro.algorithms.vector_addition import VectorAddition

        class PlanlessVectorAddition(VectorAddition):
            sim_stream_plan = GPUAlgorithm.sim_stream_plan

        algorithm = PlanlessVectorAddition()
        assert not algorithm.supports_sim_stream_plan
        sizes = [33, 64]
        swept = algorithm.observe_streamed_sweep(sizes)
        per_size = [algorithm.observe_streamed(n) for n in sizes]
        assert swept.makespans_s == [r.makespan_s for r in per_size]


class TestProbeDevice:
    def test_probe_replays_launch_decisions(self):
        algorithm = create("vector_addition")
        device = ProbeDevice(DeviceConfig.gtx650(), data_dependent=False)
        algorithm.run(device, algorithm.sim_inputs(64))
        kinds = [type(op).__name__ for op in device.ops]
        assert kinds.count("ProbeTransfer") == 3  # a, b in; c out
        assert kinds.count("ProbeKernel") == 1
        assert kinds.count("ProbeSync") == 1


class TestPipelineMakespanGrid:
    def test_matches_stream_timeline_loop(self):
        rng = np.random.default_rng(7)
        chunks, stages, widths = 3, 2, 4
        grid = rng.uniform(0.1, 1.0, size=(chunks, stages, widths))
        batched = pipeline_makespan_grid(grid)
        for column in range(widths):
            timeline = StreamTimeline()
            kinds = [StreamOpKind.H2D, StreamOpKind.KERNEL]
            for chunk in range(chunks):
                stream = timeline.stream(f"chunk{chunk}")
                for stage in range(stages):
                    timeline.submit(
                        stream, kinds[stage], grid[chunk, stage, column]
                    )
            assert batched[column] == timeline.makespan_s


class TestMergeableGroups:
    def _twin_preset(self, name="gtx650-parity-twin"):
        preset = replace(get_preset("gtx650"), name=name)
        register_preset(preset, overwrite=True)
        return preset

    def test_same_machine_presets_merge(self):
        self._twin_preset()
        a = ExperimentSpec("vector_addition", sizes=[64], preset="gtx650")
        b = ExperimentSpec(
            "vector_addition", sizes=[128], preset="gtx650-parity-twin"
        )
        assert mergeable(a, b)
        assert plan_groups([a, b]) == [[0, 1]]

    def test_rejects_other_algorithm_or_machine(self):
        a = ExperimentSpec("vector_addition", sizes=[64])
        b = ExperimentSpec("reduction", sizes=[64])
        c = ExperimentSpec("vector_addition", sizes=[64], preset="gtx1080")
        assert not mergeable(a, b)
        assert not mergeable(a, c)
        assert plan_groups([a, b, c]) == [[0], [1], [2]]

    def test_rejects_mixed_topologies(self):
        a = ExperimentSpec("vector_addition", sizes=[64])
        b = a.with_overrides(topology=Topology.homogeneous(2))
        assert not mergeable(a, b)

    def test_predict_group_refuses_unmergeable(self):
        a = ExperimentSpec("vector_addition", sizes=[64])
        b = ExperimentSpec("vector_addition", sizes=[64], preset="gtx1080")
        with pytest.raises(ValueError, match="mergeable"):
            predict_group([a, b])

    def test_union_batch_scatter_parity(self):
        # A merged group's scattered predictions equal isolated evaluation
        # bit for bit, preset names notwithstanding.
        self._twin_preset()
        a = ExperimentSpec("vector_addition", sizes=[64, 128], preset="gtx650")
        b = ExperimentSpec(
            "vector_addition", sizes=[128, 256], preset="gtx650-parity-twin"
        )
        merged = predict_group([a, b])
        for index, spec in enumerate([a, b]):
            solo = predict_group([spec])[0]
            assert merged[index].series.keys() == solo.series.keys()
            for backend in solo.series:
                assert np.array_equal(
                    merged[index].series[backend], solo.series[backend]
                )


class TestRequestQueueMerging:
    def _put(self, queue, spec, mode="predict"):
        request = PredictionRequest(spec=spec, future=Future(), mode=mode)
        queue.put(request)
        return request

    def _twin_spec(self):
        register_preset(
            replace(get_preset("gtx650"), name="gtx650-queue-twin"),
            overwrite=True,
        )
        return ExperimentSpec(
            "vector_addition", sizes=[128], preset="gtx650-queue-twin"
        )

    def test_take_merges_mergeable_keys(self):
        queue = RequestQueue()
        first = self._put(
            queue, ExperimentSpec("vector_addition", sizes=[64])
        )
        rider = self._put(queue, self._twin_spec())
        other = self._put(queue, ExperimentSpec("reduction", sizes=[64]))
        group = queue.take(FIFOPolicy())
        assert {r.request_id for r in group.requests} == {
            first.request_id, rider.request_id,
        }
        assert queue.depth == 1  # the reduction request stays pending
        leftover = queue.take(FIFOPolicy())
        assert leftover.requests == (other,)

    def test_take_keeps_modes_apart(self):
        queue = RequestQueue()
        self._put(queue, ExperimentSpec("vector_addition", sizes=[64]))
        self._put(queue, self._twin_spec(), mode="result")
        group = queue.take(FIFOPolicy())
        assert len(group.requests) == 1

    def test_merge_opt_out(self):
        queue = RequestQueue(merge_groups=False)
        self._put(queue, ExperimentSpec("vector_addition", sizes=[64]))
        self._put(queue, self._twin_spec())
        group = queue.take(FIFOPolicy())
        assert len(group.requests) == 1
        assert queue.depth == 1
