"""Tests for ``repro.lint``: the engine, each rule, suppressions, baseline,
the CLI, and the self-hosting run over the real package tree."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    Finding,
    LintEngine,
    PackageContext,
    RULE_REGISTRY,
    Rule,
    Severity,
    Suppressions,
    default_rules,
    lint_paths,
    lint_sources,
    render_text,
)
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
TESTS_ROOT = REPO_ROOT / "tests"


def findings_for(rule_id, files, tests=None, baseline=None):
    """Run one rule over in-memory sources and return its findings."""
    report = lint_sources(
        files, tests=tests, rules=default_rules(only=[rule_id]),
        baseline=baseline,
    )
    return [f for f in report.findings if f.rule == rule_id]


def src(text):
    return textwrap.dedent(text).lstrip("\n")


# --------------------------------------------------------------------- #
# LCK001 — lock discipline
# --------------------------------------------------------------------- #
LCK_VIOLATING_CLASS = src(
    """
    import threading

    class Stats:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def peek(self):
            return self._count
    """
)

LCK_CLEAN_CLASS = src(
    """
    import threading

    class Stats:
        def __init__(self):
            self._lock = threading.Lock()
            self._count = 0

        def bump(self):
            with self._lock:
                self._count += 1

        def peek(self):
            with self._lock:
                return self._count
    """
)


class TestLockDiscipline:
    def test_fires_on_unlocked_read(self):
        found = findings_for("LCK001", {"pkg/stats.py": LCK_VIOLATING_CLASS})
        assert len(found) == 1
        f = found[0]
        assert "'_count'" in f.message
        assert "'peek'" in f.message
        assert f.severity is Severity.ERROR

    def test_clean_when_every_access_is_locked(self):
        assert findings_for("LCK001", {"pkg/stats.py": LCK_CLEAN_CLASS}) == []

    def test_init_is_exempt(self):
        # The __init__ assignment of _count above is unlocked and must not
        # fire; remove peek() and the class is clean.
        source = LCK_VIOLATING_CLASS.replace(
            "    def peek(self):\n        return self._count\n", ""
        )
        assert findings_for("LCK001", {"pkg/stats.py": source}) == []

    def test_unlocked_write_reports_write(self):
        source = src(
            """
            import threading

            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()

                def bump(self):
                    with self._lock:
                        self._count = 1

                def reset(self):
                    self._count = 0
            """
        )
        found = findings_for("LCK001", {"pkg/stats.py": source})
        assert len(found) == 1
        assert "written" in found[0].message

    def test_module_level_global_under_lock(self):
        source = src(
            """
            import threading

            _LOCK = threading.Lock()
            _REGISTRY = {}

            def put(name, value):
                with _LOCK:
                    _REGISTRY[name] = value

            def get(name):
                return _REGISTRY[name]
            """
        )
        found = findings_for("LCK001", {"pkg/registry.py": source})
        assert len(found) == 1
        assert "'_REGISTRY'" in found[0].message
        assert "'get'" in found[0].message

    def test_function_locals_are_not_module_globals(self):
        # ``entry`` is assigned under the lock but is a local in both
        # functions — rebinding a local never touches module state.
        source = src(
            """
            import threading

            _LOCK = threading.Lock()
            _REGISTRY = {}

            def put(name, value):
                with _LOCK:
                    entry = (name, value)
                    _REGISTRY[name] = entry

            def label(name):
                with _LOCK:
                    entry = _REGISTRY.get(name)
                return entry
            """
        )
        assert findings_for("LCK001", {"pkg/registry.py": source}) == []

    def test_global_declaration_is_tracked(self):
        source = src(
            """
            import threading

            _LOCK = threading.Lock()
            _CACHE = None

            def warm():
                global _CACHE
                with _LOCK:
                    _CACHE = build()

            def read():
                return _CACHE
            """
        )
        found = findings_for("LCK001", {"pkg/cache.py": source})
        assert len(found) == 1
        assert "'_CACHE'" in found[0].message


# --------------------------------------------------------------------- #
# PAR001 — batch-parity coverage
# --------------------------------------------------------------------- #
PAR_REGISTRY = src(
    """
    TOPOLOGY_BACKEND = "atgpu-topo"

    def _register():
        make_backend("atgpu", evaluate, evaluate_batch=evaluate_batch)
        make_backend("scalar-only", evaluate, evaluate_batch=None)
        make_backend(
            f"{TOPOLOGY_BACKEND}-suffix",
            evaluate,
            evaluate_batch=evaluate_batch,
        )
    """
)

PAR_PARITY_TEST = src(
    """
    def test_atgpu_batch_parity():
        assert batch("atgpu") == scalar("atgpu")  # bit-for-bit parity

    def test_topo_parity():
        assert batch("atgpu-topo-suffix") == scalar("atgpu-topo-suffix")
    """
)


class TestBatchParityCoverage:
    def test_fires_without_parity_test(self):
        found = findings_for(
            "PAR001",
            {"pkg/core/backends.py": PAR_REGISTRY},
            tests={"tests/test_other.py": "def test_nothing():\n    pass\n"},
        )
        # Both batch-capable families are uncovered; the scalar-only
        # registration is not checked.
        assert len(found) == 2
        assert any("'atgpu'" in f.message for f in found)
        assert any("'atgpu-topo-suffix'" in f.message for f in found)

    def test_clean_with_parity_tests(self):
        found = findings_for(
            "PAR001",
            {"pkg/core/backends.py": PAR_REGISTRY},
            tests={"tests/test_parity.py": PAR_PARITY_TEST},
        )
        assert found == []

    def test_family_name_without_parity_vocabulary_does_not_count(self):
        found = findings_for(
            "PAR001",
            {"pkg/core/backends.py": PAR_REGISTRY},
            tests={
                "tests/test_smoke.py": (
                    "def test_smoke():\n"
                    "    run('atgpu')\n"
                    "    run('atgpu-topo-suffix')\n"
                )
            },
        )
        assert len(found) == 2

    def test_unresolvable_name_is_a_finding(self):
        registry = src(
            """
            def _register(name):
                make_backend(name, evaluate, evaluate_batch=evaluate_batch)
            """
        )
        found = findings_for(
            "PAR001",
            {"pkg/core/backends.py": registry},
            tests={"tests/test_parity.py": PAR_PARITY_TEST},
        )
        assert len(found) == 1
        assert "<unresolved>" in found[0].message

    def test_skipped_without_test_tree(self):
        found = findings_for(
            "PAR001", {"pkg/core/backends.py": PAR_REGISTRY}, tests=None
        )
        assert found == []

    def test_real_registry_families_resolve(self):
        # Against the actual package: every batch-capable family in
        # core/backends.py must resolve to a concrete name (the rule
        # reports unresolvable ones as '<unresolved>').
        from repro.lint.rules import (
            BatchParityCoverageRule,
            _module_str_constants,
        )
        from repro.lint.engine import SourceFile

        path = PACKAGE_ROOT / "core" / "backends.py"
        parsed = SourceFile.parse(str(path), path.read_text(encoding="utf-8"))
        rule = BatchParityCoverageRule()
        families = {
            family
            for family, _ in rule._families(
                parsed.tree, _module_str_constants(parsed.tree)
            )
        }
        assert "<unresolved>" not in families
        assert {"atgpu", "atgpu-topo"} <= families


# --------------------------------------------------------------------- #
# SIM001 — batched-simulator parity coverage
# --------------------------------------------------------------------- #
SIM_BATCH_MODULE = src(
    """
    def simulate_sweep(algorithm, sizes):
        return evaluate(algorithm, sizes)

    def _helper(x):
        return x
    """
)

SIM_OPT_OUT_ALGORITHM = src(
    """
    class VectorAddition(GPUAlgorithm):
        name = "vector_addition"
        sim_trace_data_dependent = False
    """
)

SIM_PARITY_TEST = src(
    """
    def test_simulate_sweep_parity():
        assert simulate_sweep(alg, sizes) == scalar  # bit-for-bit parity

    def test_vector_addition_parity():
        assert batch("vector_addition") == scalar("vector_addition")  # parity
    """
)


class TestSimBatchParityCoverage:
    def test_fires_for_uncovered_entry_point_and_opt_out(self):
        found = findings_for(
            "SIM001",
            {
                "pkg/simulator/batch.py": SIM_BATCH_MODULE,
                "pkg/algorithms/vector_addition.py": SIM_OPT_OUT_ALGORITHM,
            },
            tests={"tests/test_other.py": "def test_nothing():\n    pass\n"},
        )
        assert len(found) == 2
        assert any("'simulate_sweep'" in f.message for f in found)
        assert any("'vector_addition'" in f.message for f in found)

    def test_clean_with_parity_tests(self):
        found = findings_for(
            "SIM001",
            {
                "pkg/simulator/batch.py": SIM_BATCH_MODULE,
                "pkg/algorithms/vector_addition.py": SIM_OPT_OUT_ALGORITHM,
            },
            tests={"tests/test_sim_batch.py": SIM_PARITY_TEST},
        )
        assert found == []

    def test_name_without_parity_vocabulary_does_not_count(self):
        found = findings_for(
            "SIM001",
            {"pkg/simulator/batch.py": SIM_BATCH_MODULE},
            tests={
                "tests/test_smoke.py": (
                    "def test_smoke():\n    simulate_sweep(alg, [1])\n"
                )
            },
        )
        assert len(found) == 1

    def test_skipped_without_test_tree(self):
        found = findings_for(
            "SIM001",
            {"pkg/simulator/batch.py": SIM_BATCH_MODULE},
            tests=None,
        )
        assert found == []

    def test_data_dependent_true_is_not_checked(self):
        algorithm = src(
            """
            class Histogram(GPUAlgorithm):
                name = "histogram"
                sim_trace_data_dependent = True
            """
        )
        found = findings_for(
            "SIM001",
            {"pkg/algorithms/histogram.py": algorithm},
            tests={"tests/test_other.py": "def test_nothing():\n    pass\n"},
        )
        assert found == []


# --------------------------------------------------------------------- #
# FRZ001 — frozen-type mutation
# --------------------------------------------------------------------- #
FRZ_VIOLATING = src(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Spec:
        size: int

    def grow(self):
        object.__setattr__(self, "size", self.size + 1)

    @dataclass(frozen=True)
    class Bad:
        size: int

        def grow(self):
            object.__setattr__(self, "size", self.size + 1)
    """
)

FRZ_CLEAN = src(
    """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Spec:
        size: int

        def __post_init__(self):
            object.__setattr__(self, "size", int(self.size))

    @dataclass
    class Mutable:
        size: int

        def grow(self):
            object.__setattr__(self, "size", self.size + 1)
    """
)


class TestFrozenMutation:
    def test_fires_on_method_mutation(self):
        found = findings_for("FRZ001", {"pkg/spec.py": FRZ_VIOLATING})
        # Only the method inside the frozen class fires; the module-level
        # function is outside any frozen class.
        assert len(found) == 1
        assert "'Bad'" in found[0].message
        assert "'grow'" in found[0].message

    def test_post_init_and_unfrozen_are_clean(self):
        assert findings_for("FRZ001", {"pkg/spec.py": FRZ_CLEAN}) == []


# --------------------------------------------------------------------- #
# CEIL001 — ceil discipline
# --------------------------------------------------------------------- #
CEIL_VIOLATING = src(
    """
    import math

    def blocks(n, b):
        return math.ceil(n / b)

    def blocks_int(n, b):
        return -(-n // b)
    """
)

CEIL_CLEAN = src(
    """
    import math
    from repro.utils.numerics import ceil_div

    def blocks(n, b):
        return ceil_div(n, b)

    def depth(n):
        return math.ceil(math.log2(n))
    """
)


class TestCeilDiscipline:
    def test_fires_on_both_idioms_in_scope(self):
        found = findings_for("CEIL001", {"pkg/core/grid.py": CEIL_VIOLATING})
        assert len(found) == 2
        messages = " ".join(f.message for f in found)
        assert "math.ceil over /" in messages
        assert "-(-a // b)" in messages

    def test_out_of_scope_file_is_ignored(self):
        found = findings_for("CEIL001", {"pkg/models/pem.py": CEIL_VIOLATING})
        assert found == []

    def test_clean_idioms_pass(self):
        assert findings_for("CEIL001", {"pkg/core/grid.py": CEIL_CLEAN}) == []

    def test_helper_module_is_exempt(self):
        found = findings_for(
            "CEIL001", {"pkg/core/utils/numerics.py": CEIL_VIOLATING}
        )
        assert found == []


# --------------------------------------------------------------------- #
# DIC001 — from_dict coverage
# --------------------------------------------------------------------- #
DIC_VIOLATING = src(
    """
    class Config:
        @classmethod
        def from_dict(cls, data):
            return cls(**data)
    """
)

DIC_CLEAN = src(
    """
    from repro.utils.validation import reject_unknown_fields

    class Config:
        @classmethod
        def from_dict(cls, data):
            reject_unknown_fields("Config", data, ("size",))
            return cls(**data)

    class Raiser:
        @classmethod
        def from_dict(cls, data):
            if set(data) - {"size"}:
                raise UnknownFieldError("Raiser", set(data), {"size"})
            return cls(**data)
    """
)


class TestFromDictCoverage:
    def test_fires_on_silent_from_dict(self):
        found = findings_for("DIC001", {"pkg/config.py": DIC_VIOLATING})
        assert len(found) == 1
        assert "unknown keys" in found[0].message

    def test_clean_with_rejection(self):
        assert findings_for("DIC001", {"pkg/config.py": DIC_CLEAN}) == []


# --------------------------------------------------------------------- #
# Suppressions and baseline
# --------------------------------------------------------------------- #
class TestSuppressions:
    def test_same_line_suppression(self):
        source = DIC_VIOLATING.replace(
            "    def from_dict(cls, data):",
            "    def from_dict(cls, data):"
            "  # repro-lint: disable=DIC001 -- trusted input",
        )
        found = findings_for("DIC001", {"pkg/config.py": source})
        assert len(found) == 1
        assert found[0].suppressed
        assert found[0].suppression_reason == "trusted input"
        assert not found[0].active

    def test_preceding_line_suppression(self):
        source = DIC_VIOLATING.replace(
            "    @classmethod",
            "    @classmethod\n"
            "    # repro-lint: disable=DIC001 -- trusted input",
        )
        # The comment lands directly above the def line the finding
        # anchors to.
        found = findings_for("DIC001", {"pkg/config.py": source})
        assert len(found) == 1
        assert found[0].suppressed

    def test_file_wide_and_wildcard(self):
        source = "# repro-lint: disable-file=* -- generated\n" + DIC_VIOLATING
        found = findings_for("DIC001", {"pkg/config.py": source})
        assert len(found) == 1
        assert found[0].suppressed
        assert found[0].suppression_reason == "generated"

    def test_unrelated_rule_not_suppressed(self):
        source = DIC_VIOLATING.replace(
            "    def from_dict(cls, data):",
            "    def from_dict(cls, data):"
            "  # repro-lint: disable=CEIL001 -- wrong rule",
        )
        found = findings_for("DIC001", {"pkg/config.py": source})
        assert len(found) == 1
        assert not found[0].suppressed
        assert found[0].active

    def test_scan_parses_rules_and_reasons(self):
        table = Suppressions.scan(
            "x = 1  # repro-lint: disable=AAA001,BBB002 -- two at once\n"
        )
        assert table.lookup("AAA001", 1) == "two at once"
        assert table.lookup("BBB002", 1) == "two at once"
        assert table.lookup("CCC003", 1) is None


class TestBaseline:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        report = lint_sources(
            {"pkg/config.py": DIC_VIOLATING},
            rules=default_rules(only=["DIC001"]),
        )
        assert not report.ok
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(
            Baseline.from_findings(report.findings).to_json(),
            encoding="utf-8",
        )
        rerun = lint_sources(
            {"pkg/config.py": DIC_VIOLATING},
            rules=default_rules(only=["DIC001"]),
            baseline=Baseline.load(baseline_file),
        )
        assert rerun.ok
        assert all(f.baselined for f in rerun.findings)

    def test_new_findings_still_fail(self):
        baseline = Baseline.from_findings([
            Finding(rule="DIC001", path="pkg/other.py", line=3, message="x")
        ])
        report = lint_sources(
            {"pkg/config.py": DIC_VIOLATING},
            rules=default_rules(only=["DIC001"]),
            baseline=baseline,
        )
        assert not report.ok


# --------------------------------------------------------------------- #
# Engine plumbing
# --------------------------------------------------------------------- #
class TestEngine:
    def test_syntax_error_becomes_parse_finding(self):
        report = lint_sources({"pkg/broken.py": "def f(:\n"})
        assert len(report.findings) == 1
        assert report.findings[0].rule == "PARSE"
        assert not report.ok

    def test_registry_has_all_core_rules(self):
        assert {
            "LCK001", "PAR001", "FRZ001", "CEIL001", "DIC001", "SIM001"
        } <= set(RULE_REGISTRY)

    def test_unknown_rule_name_raises(self):
        with pytest.raises(KeyError):
            default_rules(only=["NOPE999"])

    def test_duplicate_rule_ids_rejected(self):
        rules = default_rules(only=["DIC001", "DIC001"])
        with pytest.raises(ValueError):
            LintEngine(rules=rules)

    def test_custom_rule_registration(self):
        class NoTodoRule(Rule):
            id = "TMP999"
            title = "temporary test rule"

            def check(self, ctx):
                for source in self.targets(ctx):
                    for lineno, line in enumerate(
                        source.source.splitlines(), start=1
                    ):
                        if "TODO" in line:
                            yield self.finding(source, lineno, "todo found")

        report = lint_sources(
            {"pkg/x.py": "# TODO: later\n"}, rules=[NoTodoRule()]
        )
        assert [f.rule for f in report.findings] == ["TMP999"]

    def test_render_text_mentions_suppression(self):
        report = lint_sources(
            {
                "pkg/config.py": DIC_VIOLATING.replace(
                    "    def from_dict(cls, data):",
                    "    def from_dict(cls, data):"
                    "  # repro-lint: disable=DIC001 -- trusted",
                )
            },
            rules=default_rules(only=["DIC001"]),
        )
        lines = render_text(report.findings)
        assert any("suppressed: trusted" in line for line in lines)

    def test_report_to_dict_round_trips_via_json(self):
        report = lint_sources(
            {"pkg/config.py": DIC_VIOLATING},
            rules=default_rules(only=["DIC001"]),
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["summary"]["active"] == 1
        assert payload["findings"][0]["rule"] == "DIC001"


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCli:
    def write_pkg(self, tmp_path, source=DIC_VIOLATING):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "config.py").write_text(source, encoding="utf-8")
        return pkg

    def test_exit_one_on_findings_and_json_output(self, tmp_path, capsys):
        pkg = self.write_pkg(tmp_path)
        out_file = tmp_path / "findings.json"
        code = lint_main([
            str(pkg), "--format", "json", "--rules", "DIC001",
            "--tests", str(tmp_path / "no-tests"),
            "--out", str(out_file),
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["active"] == 1
        assert json.loads(out_file.read_text(encoding="utf-8")) == payload

    def test_exit_zero_on_clean_tree(self, tmp_path):
        pkg = self.write_pkg(tmp_path, source=DIC_CLEAN)
        assert lint_main([str(pkg), "--rules", "DIC001"]) == 0

    def test_exit_two_on_missing_path(self, tmp_path):
        assert lint_main([str(tmp_path / "nowhere")]) == 2

    def test_exit_two_on_unknown_rule(self, tmp_path):
        assert lint_main([str(tmp_path), "--rules", "NOPE999"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("LCK001", "PAR001", "FRZ001", "CEIL001", "DIC001",
                        "SIM001"):
            assert rule_id in out

    def test_module_entry_point(self, tmp_path):
        pkg = self.write_pkg(tmp_path, source=DIC_CLEAN)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(pkg),
             "--rules", "DIC001"],
            capture_output=True, text=True,
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
        )
        assert proc.returncode == 0, proc.stderr


# --------------------------------------------------------------------- #
# Self-hosting: the real package must be clean
# --------------------------------------------------------------------- #
class TestSelfHosting:
    def test_package_tree_has_no_active_findings(self):
        report = lint_paths([PACKAGE_ROOT], tests_root=TESTS_ROOT)
        assert report.checked_files > 50
        active = report.active
        assert active == [], "\n".join(render_text(active))

    def test_every_rule_ran(self):
        report = lint_paths([PACKAGE_ROOT], tests_root=TESTS_ROOT)
        assert {
            "LCK001", "PAR001", "FRZ001", "CEIL001", "DIC001", "SIM001"
        } <= set(report.rules)

    def test_known_suppressions_carry_reasons(self):
        report = lint_paths([PACKAGE_ROOT], tests_root=TESTS_ROOT)
        suppressed = [f for f in report.findings if f.suppressed]
        assert suppressed, "expected the documented FRZ001 memo suppressions"
        assert all(f.suppression_reason for f in suppressed)
