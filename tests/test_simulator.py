"""Tests for the abstract-GPU simulator (memory, scheduler, timing, device)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.transfer import TransferDirection
from repro.simulator import (
    BlockScheduler,
    DeviceConfig,
    GPUDevice,
    GlobalMemory,
    InstructionKind,
    InstructionRecord,
    KernelProgram,
    OutOfGlobalMemoryError,
    OutOfSharedMemoryError,
    SharedMemory,
    TimingEngine,
    TransferEngine,
    bank_conflict_degree,
    coalesced_transactions,
)
from repro.simulator.trace import BlockTrace


class TestCoalescing:
    def test_same_block_is_one_transaction(self):
        assert coalesced_transactions(np.arange(32), 32) == 1

    def test_two_blocks_are_two_transactions(self):
        assert coalesced_transactions(np.array([0, 32]), 32) == 2

    def test_strided_access_touches_many_blocks(self):
        assert coalesced_transactions(np.arange(0, 32 * 32, 32), 32) == 32

    def test_empty_access(self):
        assert coalesced_transactions(np.array([]), 32) == 0

    def test_negative_address_rejected(self):
        with pytest.raises(Exception):
            coalesced_transactions(np.array([-1]), 32)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=64))
    def test_transactions_bounded_by_unique_addresses(self, addresses):
        transactions = coalesced_transactions(np.array(addresses), 32)
        assert 1 <= transactions <= len(set(addresses))


class TestBankConflicts:
    def test_distinct_banks_conflict_free(self):
        assert bank_conflict_degree(np.arange(32), 32) == 1

    def test_same_bank_serialises(self):
        assert bank_conflict_degree(np.array([0, 32, 64]), 32) == 3

    def test_broadcast_of_same_word_is_free(self):
        assert bank_conflict_degree(np.zeros(32, dtype=int), 32) == 1

    def test_stride_two_conflicts(self):
        degree = bank_conflict_degree(np.arange(0, 64, 2), 32)
        assert degree == 2


class TestGlobalMemory:
    def test_allocation_and_capacity(self):
        memory = GlobalMemory(capacity_words=128, words_per_block=32)
        memory.allocate("a", 64)
        assert memory.used_words == 64
        assert memory.free_words == 64
        with pytest.raises(OutOfGlobalMemoryError):
            memory.allocate("b", 65)

    def test_free_and_coalesce(self):
        memory = GlobalMemory(capacity_words=128, words_per_block=32)
        memory.allocate("a", 64)
        memory.allocate("b", 64)
        memory.free("a")
        memory.free("b")
        assert memory.free_words == 128
        memory.allocate("c", 128)  # would fail without free-list coalescing

    def test_double_allocation_rejected(self):
        memory = GlobalMemory(64, 32)
        memory.allocate("a", 32)
        with pytest.raises(Exception):
            memory.allocate("a", 16)

    def test_unknown_free_rejected(self):
        memory = GlobalMemory(64, 32)
        with pytest.raises(Exception):
            memory.free("ghost")

    def test_device_array_read_write_and_bounds(self):
        memory = GlobalMemory(128, 32)
        array = memory.allocate("a", 16, dtype=np.int64)
        array.write(np.arange(4), np.array([5, 6, 7, 8]))
        assert list(array.read(np.arange(4))) == [5, 6, 7, 8]
        with pytest.raises(Exception):
            array.read(np.array([16]))

    def test_transactions_for_respects_offset(self):
        memory = GlobalMemory(256, 32)
        memory.allocate("pad", 16)
        array = memory.allocate("a", 64)
        # Array starts at word 16, so elements 0..15 and 16..47 straddle blocks.
        assert memory.transactions_for(array, np.arange(32)) == 2


class TestSharedMemory:
    def test_capacity_enforced(self):
        shared = SharedMemory(capacity_words=64, num_banks=32)
        shared.allocate("_a", 48)
        with pytest.raises(OutOfSharedMemoryError):
            shared.allocate("_b", 32)

    def test_conflict_degree_uses_offset(self):
        shared = SharedMemory(capacity_words=128, num_banks=32)
        shared.allocate("_a", 32)
        assert shared.conflict_degree("_a", np.arange(32)) == 1

    def test_unknown_array(self):
        shared = SharedMemory(64, 32)
        with pytest.raises(Exception):
            shared.get("_ghost")


class TestTransferEngine:
    def test_duration_is_affine_in_words(self, tiny_config):
        engine = TransferEngine(tiny_config)
        d1 = engine.duration(1000, TransferDirection.HOST_TO_DEVICE)
        d2 = engine.duration(2000, TransferDirection.HOST_TO_DEVICE)
        streaming = d2 - d1
        assert d1 == pytest.approx(tiny_config.transfer_latency_s + streaming)

    def test_pinned_transfers_are_faster(self, tiny_config):
        engine = TransferEngine(tiny_config)
        assert (engine.duration(10_000, TransferDirection.HOST_TO_DEVICE, pinned=True)
                < engine.duration(10_000, TransferDirection.HOST_TO_DEVICE))

    def test_statistics_accumulate(self, tiny_config):
        engine = TransferEngine(tiny_config)
        engine.transfer(100, TransferDirection.HOST_TO_DEVICE)
        engine.transfer(50, TransferDirection.DEVICE_TO_HOST)
        assert engine.total_words() == 150
        assert engine.total_words(TransferDirection.HOST_TO_DEVICE) == 100
        assert engine.transaction_count() == 2
        assert engine.total_time() > 0

    def test_implied_boyer_parameters(self, tiny_config):
        engine = TransferEngine(tiny_config)
        alpha, beta = engine.implied_boyer_parameters()
        assert alpha == tiny_config.transfer_latency_s
        assert beta == pytest.approx(4 / tiny_config.h2d_bandwidth_bytes_per_s)

    def test_fractional_word_counts_are_rejected(self, tiny_config):
        engine = TransferEngine(tiny_config)
        with pytest.raises(ValueError):
            engine.transfer(1000.5, TransferDirection.HOST_TO_DEVICE)
        with pytest.raises(ValueError):
            engine.duration(0.25, TransferDirection.DEVICE_TO_HOST)
        with pytest.raises(TypeError):
            engine.transfer("12", TransferDirection.HOST_TO_DEVICE)
        # Nothing is recorded by a rejected transfer.
        assert engine.records == []

    def test_integral_floats_and_numpy_ints_are_accepted(self, tiny_config):
        import numpy as np

        engine = TransferEngine(tiny_config)
        from_float = engine.transfer(100.0, TransferDirection.HOST_TO_DEVICE)
        from_numpy = engine.transfer(
            np.int64(100), TransferDirection.HOST_TO_DEVICE
        )
        assert from_float.words == from_numpy.words == 100
        assert isinstance(from_float.words, int)
        assert from_float.duration_s == from_numpy.duration_s

    def test_zero_word_transfer_is_a_free_marker(self, tiny_config):
        """Matches the cost model: zero-word events cost nothing, not α."""
        engine = TransferEngine(tiny_config)
        assert engine.duration(0, TransferDirection.HOST_TO_DEVICE) == 0.0
        record = engine.transfer(0, TransferDirection.DEVICE_TO_HOST)
        assert record.duration_s == 0.0
        assert record.words == 0

    def test_record_and_duration_agree(self, tiny_config):
        """The recorded word count must be the one the duration was computed
        from, so the record's effective bandwidth is consistent."""
        engine = TransferEngine(tiny_config)
        record = engine.transfer(2000, TransferDirection.HOST_TO_DEVICE)
        assert record.duration_s == engine.duration(
            record.words, TransferDirection.HOST_TO_DEVICE
        )
        assert record.effective_bandwidth_bytes_per_s == pytest.approx(
            record.bytes / record.duration_s
        )
        assert engine.total_words() == 2000


class TestScheduler:
    def test_plan_matches_expression_two(self, tiny_config):
        scheduler = BlockScheduler(tiny_config)
        plan = scheduler.plan(num_blocks=40, shared_words_per_block=64)
        # ℓ = min(256 // 64, 4) = 4, concurrent = 8, waves = ceil(40/8) = 5.
        assert plan.blocks_per_sm == 4
        assert plan.concurrent_blocks == 8
        assert plan.waves == 5
        assert plan.blocks_in_last_wave == 8
        assert plan.occupancy == pytest.approx(1.0)

    def test_partial_last_wave(self, tiny_config):
        plan = BlockScheduler(tiny_config).plan(num_blocks=9, shared_words_per_block=64)
        assert plan.waves == 2
        assert plan.blocks_in_last_wave == 1
        assert plan.occupancy < 1.0

    def test_max_resident_blocks(self, tiny_config):
        scheduler = BlockScheduler(tiny_config)
        assert scheduler.max_resident_blocks(0) == tiny_config.num_sms * tiny_config.max_blocks_per_sm

    def test_ragged_last_wave_invariants_across_grid_sizes(self, tiny_config):
        """Sweep grid sizes and footprints: the final (possibly ragged) wave
        always runs at least one block, never more than a full wave, and the
        average occupancy stays within (0, 1]."""
        scheduler = BlockScheduler(tiny_config)
        for shared_words in (0, 16, 64, 128, 256):
            for num_blocks in range(1, 70):
                plan = scheduler.plan(num_blocks, shared_words)
                assert 1 <= plan.blocks_in_last_wave <= plan.concurrent_blocks
                assert 0.0 < plan.occupancy <= 1.0
                # The waves account exactly for the grid.
                full_waves = (plan.waves - 1) * plan.concurrent_blocks
                assert full_waves + plan.blocks_in_last_wave == num_blocks


class TestTimingEngine:
    def _trace(self, compute=10.0, transactions=2, words=8, shared=2, barriers=1):
        trace = BlockTrace(block_index=0, shared_words_used=16)
        trace.append(InstructionRecord(InstructionKind.COMPUTE, operations=compute))
        trace.append(InstructionRecord(InstructionKind.GLOBAL_READ,
                                       transactions=transactions, words=words))
        for _ in range(shared):
            trace.append(InstructionRecord(InstructionKind.SHARED_READ, words=4))
        for _ in range(barriers):
            trace.append(InstructionRecord(InstructionKind.BARRIER))
        return trace

    def test_timing_positive_and_bounded(self, tiny_config):
        engine = TimingEngine(tiny_config)
        timing = engine.kernel_timing("demo", [(self._trace(), 10)])
        assert timing.device_time_s > 0
        assert timing.total_time_s >= timing.device_time_s
        assert timing.plan.num_blocks == 10
        assert timing.limiting_factor in ("issue", "latency", "bandwidth")

    def test_more_blocks_take_longer(self, tiny_config):
        engine = TimingEngine(tiny_config)
        small = engine.kernel_timing("demo", [(self._trace(), 8)])
        large = engine.kernel_timing("demo", [(self._trace(), 80)])
        assert large.device_time_s > small.device_time_s

    def test_memory_heavy_kernel_is_not_issue_bound(self, tiny_config):
        engine = TimingEngine(tiny_config)
        heavy = self._trace(compute=0.0, transactions=64, words=256, shared=0, barriers=0)
        timing = engine.kernel_timing("demo", [(heavy, 4)])
        assert timing.limiting_factor in ("latency", "bandwidth")

    def test_requires_traces(self, tiny_config):
        with pytest.raises(ValueError):
            TimingEngine(tiny_config).kernel_timing("demo", [])

    @settings(max_examples=25)
    @given(st.integers(min_value=1, max_value=500))
    def test_monotone_in_block_count(self, blocks):
        config = DeviceConfig.tiny_test_device()
        engine = TimingEngine(config)
        trace = BlockTrace(block_index=0)
        trace.append(InstructionRecord(InstructionKind.COMPUTE, operations=5))
        trace.append(InstructionRecord(InstructionKind.GLOBAL_READ, transactions=1, words=4))
        t1 = engine.kernel_timing("demo", [(trace, blocks)]).device_time_s
        t2 = engine.kernel_timing("demo", [(trace, blocks + 1)]).device_time_s
        assert t2 >= t1


class _CopyKernel(KernelProgram):
    """Copies array ``src`` to ``dst`` one block at a time (test helper)."""

    name = "copy_kernel"

    def __init__(self, n, warp_width):
        self.n = n
        self.warp_width = warp_width

    def grid_size(self):
        return -(-self.n // self.warp_width)

    def array_names(self):
        return ("src", "dst")

    def run_block(self, ctx):
        start = ctx.block_index * self.warp_width
        count = min(self.warp_width, self.n - start)
        idx = start + np.arange(count)
        values = ctx.global_read("src", idx)
        ctx.compute(1.0)
        ctx.global_write("dst", idx, values)

    def vectorised_result(self, arrays):
        arrays["dst"].data[: self.n] = arrays["src"].data[: self.n]


class TestGPUDevice:
    def test_memcpy_roundtrip(self, tiny_device):
        data = np.arange(37)
        tiny_device.memcpy_htod("x", data)
        assert np.array_equal(tiny_device.memcpy_dtoh("x"), data)
        assert tiny_device.transfer_time_s > 0
        assert tiny_device.total_time_s == pytest.approx(
            tiny_device.transfer_time_s)

    def test_partial_copy_back(self, tiny_device):
        tiny_device.memcpy_htod("x", np.arange(16))
        head = tiny_device.memcpy_dtoh_partial("x", 4)
        assert list(head) == [0, 1, 2, 3]
        with pytest.raises(Exception):
            tiny_device.memcpy_dtoh_partial("x", 100)

    def test_functional_launch_copies_data(self, tiny_device):
        data = np.arange(25)
        tiny_device.memcpy_htod("src", data)
        tiny_device.allocate("dst", 25)
        record = tiny_device.launch(_CopyKernel(25, tiny_device.config.warp_width))
        assert record.functional
        assert np.array_equal(tiny_device.memcpy_dtoh("dst"), data)
        assert tiny_device.kernel_time_s > 0

    def test_sampled_launch_uses_vectorised_fallback(self, tiny_device):
        data = np.arange(101)
        tiny_device.memcpy_htod("src", data)
        tiny_device.allocate("dst", 101)
        record = tiny_device.launch(
            _CopyKernel(101, tiny_device.config.warp_width), force_functional=False)
        assert not record.functional
        assert np.array_equal(tiny_device.memcpy_dtoh("dst"), data)

    def test_functional_and_sampled_timings_agree_for_uniform_kernels(self, tiny_config):
        n = 16 * tiny_config.warp_width
        functional_device = GPUDevice(tiny_config)
        sampled_device = GPUDevice(tiny_config)
        for device, force in ((functional_device, True), (sampled_device, False)):
            device.memcpy_htod("src", np.arange(n))
            device.allocate("dst", n)
            device.launch(_CopyKernel(n, tiny_config.warp_width), force_functional=force)
        assert functional_device.kernel_time_s == pytest.approx(
            sampled_device.kernel_time_s, rel=1e-9)

    def test_launch_with_missing_array_raises(self, tiny_device):
        with pytest.raises(Exception, match="dst|src"):
            tiny_device.launch(_CopyKernel(8, tiny_device.config.warp_width))

    def test_synchronise_accumulates(self, tiny_device):
        tiny_device.synchronise()
        tiny_device.synchronise()
        assert tiny_device.sync_time_s == pytest.approx(
            2 * tiny_device.config.sync_overhead_s)

    def test_reset_timers_keeps_memory(self, tiny_device):
        tiny_device.memcpy_htod("x", np.arange(8))
        tiny_device.reset_timers()
        assert tiny_device.total_time_s == 0.0
        assert np.array_equal(tiny_device.array("x").to_host(), np.arange(8))

    def test_profile_render(self, tiny_device):
        tiny_device.memcpy_htod("x", np.arange(8))
        tiny_device.synchronise()
        text = tiny_device.profile()
        assert "H2D x" in text and "sync" in text

    def test_abstract_machine_link(self, tiny_config):
        machine = tiny_config.abstract_machine()
        assert machine.b == tiny_config.warp_width
        assert machine.M == tiny_config.shared_memory_words
        assert machine.G == tiny_config.global_memory_words
