"""Tests for the algorithm implementations: correctness, metrics, paper formulas."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    Histogram,
    MatrixMultiplication,
    PrefixSum,
    Reduction,
    SpMV,
    Stencil1D,
    VectorAddition,
    all_algorithm_names,
    create,
    extension_algorithm_names,
    paper_algorithm_names,
    reduction_rounds,
)
from repro.core.presets import GTX_650
from repro.simulator import DeviceConfig

TINY = DeviceConfig.tiny_test_device()
GTX = DeviceConfig.gtx650()


class TestRegistry:
    def test_paper_algorithms_registered(self):
        assert paper_algorithm_names() == [
            "vector_addition", "reduction", "matrix_multiplication"]

    def test_extensions_registered(self):
        assert set(extension_algorithm_names()) == {
            "prefix_sum", "stencil_1d", "histogram", "spmv"}

    def test_create_by_name(self):
        assert isinstance(create("vector_addition"), VectorAddition)
        with pytest.raises(KeyError):
            create("bogus")

    def test_all_names_unique(self):
        names = all_algorithm_names()
        assert len(names) == len(set(names)) == 7


class TestCorrectness:
    """Every algorithm's simulated run must match its NumPy reference."""

    @pytest.mark.parametrize("name,n", [
        ("vector_addition", 5_000),
        ("reduction", 40_000),
        ("matrix_multiplication", 96),
        ("prefix_sum", 7_777),
        ("stencil_1d", 3_000),
        ("histogram", 50_000),
        ("spmv", 1_024),
    ])
    def test_matches_reference_on_gtx650(self, name, n):
        record = create(name).observe(n, config=GTX, seed=3, check=True)
        assert record.correct is True
        assert record.kernel_time_s > 0
        assert record.transfer_time_s > 0
        assert record.total_time_s >= record.kernel_time_s + record.transfer_time_s

    @pytest.mark.parametrize("name,n", [
        ("vector_addition", 37),
        ("reduction", 100),
        ("prefix_sum", 61),
        ("stencil_1d", 50),
        ("histogram", 300),
        ("spmv", 40),
    ])
    def test_matches_reference_on_tiny_device(self, name, n):
        assert create(name).observe(n, config=TINY, seed=1, check=True).correct

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=400), st.integers(min_value=0, max_value=5))
    def test_reduction_correct_for_arbitrary_sizes(self, n, seed):
        assert Reduction().observe(n, config=TINY, seed=seed, check=True).correct

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=300), st.integers(min_value=0, max_value=5))
    def test_prefix_sum_correct_for_arbitrary_sizes(self, n, seed):
        assert PrefixSum().observe(n, config=TINY, seed=seed, check=True).correct

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=1, max_value=6))
    def test_matmul_correct_for_multiples_of_warp(self, tiles):
        n = 32 * tiles
        assert MatrixMultiplication().observe(n, config=GTX, check=True).correct


class TestVectorAdditionAnalysis:
    """The hand metrics must equal the closed forms of Section IV-A."""

    def test_metrics_formulas(self):
        machine = GTX_650.machine
        n = 1_000_000
        metrics = VectorAddition().metrics(n, machine)
        k = math.ceil(n / machine.b)
        assert metrics.num_rounds == 1
        assert metrics[0].time == 3
        assert metrics[0].io_blocks == 3 * k
        assert metrics.total_transfer_words == 3 * n
        assert metrics.total_transfer_transactions == 3
        assert metrics.max_global_words == 3 * n
        assert metrics.max_shared_words_per_mp == 3 * machine.b

    def test_cost_closed_form(self):
        """GPU-cost equals  3α + 3βn + (⌈k/(k'ℓ)⌉·3 + 3λk)/γ + σ."""
        preset = GTX_650
        n = 1_000_000
        report = VectorAddition().analyse(n, preset)
        machine, params = preset.machine, preset.parameters
        k = math.ceil(n / machine.b)
        ell = preset.occupancy.blocks_per_mp(machine.M, 3 * machine.b)
        waves = math.ceil(k / (preset.occupancy.physical_mps * ell))
        expected = (3 * params.alpha + 3 * params.beta * n
                    + (waves * 3 + params.lam * 3 * k) / params.gamma
                    + params.sigma)
        assert report.gpu_cost == pytest.approx(expected)

    def test_transfer_dominates_predicted_cost_at_paper_sizes(self):
        report = VectorAddition().analyse(10_000_000, GTX_650)
        assert report.predicted_transfer_proportion > 0.7

    def test_default_sizes_match_paper(self):
        sizes = VectorAddition().default_sizes()
        assert sizes[0] == 1_000_000 and sizes[-1] == 10_000_000 and len(sizes) == 10


class TestReductionAnalysis:
    def test_round_structure(self):
        machine = GTX_650.machine
        n = 2 ** 20
        metrics = Reduction().metrics(n, machine)
        assert metrics.num_rounds == len(reduction_rounds(n, machine.b)) == 4
        assert metrics.total_inward_words == n
        assert metrics.total_outward_words == 1
        assert metrics[0].thread_blocks == n // machine.b

    def test_reduction_rounds_shrink_by_b(self):
        sizes = reduction_rounds(32 ** 3, 32)
        assert sizes == [32 ** 3, 32 ** 2, 32]

    def test_reduction_rounds_handles_one_element(self):
        assert reduction_rounds(1, 32) == [1]

    def test_io_is_geometric_sum(self):
        machine = GTX_650.machine
        n = 2 ** 18
        metrics = Reduction().metrics(n, machine)
        expected = sum(2 * math.ceil(size / machine.b)
                       for size in reduction_rounds(n, machine.b))
        assert metrics.total_io_blocks == expected

    def test_default_sizes_match_paper(self):
        sizes = Reduction().default_sizes()
        assert sizes[0] == 2 ** 16 and sizes[-1] == 2 ** 26


class TestMatrixMultiplicationAnalysis:
    def test_metrics_formulas(self):
        machine = GTX_650.machine
        n = 512
        metrics = MatrixMultiplication().metrics(n, machine)
        b = machine.b
        tiles = n // b
        assert metrics[0].time == n * b
        assert metrics[0].thread_blocks == tiles ** 2
        assert metrics[0].io_blocks == tiles ** 2 * (tiles * 2 * b + b)
        assert metrics.total_transfer_words == 3 * n * n
        assert metrics.max_shared_words_per_mp == 3 * b * b

    def test_transfer_is_minor_part_of_predicted_cost(self):
        report = MatrixMultiplication().analyse(1024, GTX_650)
        assert report.predicted_transfer_proportion < 0.5

    def test_non_multiple_of_warp_rejected_by_kernel(self):
        from repro.algorithms.matrix_multiplication import MatrixMultiplicationKernel
        with pytest.raises(ValueError):
            MatrixMultiplicationKernel(100, 32)


class TestExtensionAnalyses:
    @pytest.mark.parametrize("algorithm,n", [
        (PrefixSum(), 100_000),
        (Stencil1D(), 65_536),
        (Histogram(), 200_000),
        (SpMV(), 4_096),
    ])
    def test_metrics_fit_on_paper_machine(self, algorithm, n):
        metrics = algorithm.metrics(n, GTX_650.machine)
        metrics.validate_against(GTX_650.machine)
        assert metrics.total_transfer_words > 0
        report = algorithm.analyse(n, GTX_650)
        assert report.gpu_cost > report.swgpu_cost > 0

    def test_stencil_iterations_multiply_rounds(self):
        machine = GTX_650.machine
        assert Stencil1D(iterations=6).metrics(10_000, machine).num_rounds == 6

    def test_spmv_transfer_grows_with_density(self):
        machine = GTX_650.machine
        sparse = SpMV(nnz_per_row=4).metrics(10_000, machine)
        dense = SpMV(nnz_per_row=32).metrics(10_000, machine)
        assert dense.total_transfer_words > sparse.total_transfer_words


class TestObservedBehaviour:
    """Qualitative observed behaviour matching Section IV's findings."""

    def test_vector_addition_is_transfer_dominated(self):
        record = VectorAddition().observe(2_000_000, config=GTX)
        assert record.observed_transfer_proportion > 0.6

    def test_matmul_is_kernel_dominated_at_large_sizes(self):
        record = MatrixMultiplication().observe(512, config=GTX)
        assert record.observed_transfer_proportion < 0.4

    def test_reduction_sits_between(self):
        vec = VectorAddition().observe(2_000_000, config=GTX)
        red = Reduction().observe(2_097_152, config=GTX)
        mat = MatrixMultiplication().observe(512, config=GTX)
        assert (mat.observed_transfer_proportion
                < red.observed_transfer_proportion
                < vec.observed_transfer_proportion)

    def test_observation_sweep_structure(self):
        sweep = VectorAddition().observe_sweep([10_000, 20_000, 40_000], config=GTX)
        assert sweep.sizes == [10_000, 20_000, 40_000]
        assert np.all(np.diff(sweep.totals) > 0)
        assert np.all(sweep.kernels <= sweep.totals)
