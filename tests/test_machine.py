"""Unit tests for the ATGPU abstract machine and its metrics containers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.machine import ATGPUMachine, perfect_machine_for
from repro.core.metrics import (
    AlgorithmMetrics,
    CapacityError,
    MetricsBuilder,
    RoundMetrics,
)


class TestATGPUMachine:
    def test_k_is_p_over_b(self, machine):
        assert machine.k == machine.p // machine.b == 2

    def test_b_must_divide_p(self):
        with pytest.raises(ValueError, match="divide"):
            ATGPUMachine(p=70, b=32, M=1024, G=4096)

    def test_positive_parameters_required(self):
        with pytest.raises(ValueError):
            ATGPUMachine(p=0, b=32, M=1024, G=4096)

    def test_shared_memory_at_least_one_bank_row(self):
        with pytest.raises(ValueError, match="M"):
            ATGPUMachine(p=32, b=32, M=16, G=4096)

    def test_global_memory_at_least_one_block(self):
        with pytest.raises(ValueError, match="G"):
            ATGPUMachine(p=32, b=32, M=1024, G=16)

    def test_derived_aliases(self, machine):
        assert machine.warp_width == machine.b
        assert machine.shared_memory_banks == machine.b
        assert machine.words_per_block == machine.b
        assert machine.num_multiprocessors == machine.k

    def test_global_memory_blocks(self, machine):
        assert machine.global_memory_blocks == machine.G // machine.b

    def test_capacity_checks(self, machine):
        assert machine.fits_in_global_memory(machine.G)
        assert not machine.fits_in_global_memory(machine.G + 1)
        assert machine.fits_in_shared_memory(machine.M)
        assert not machine.fits_in_shared_memory(machine.M + 1)

    def test_capacity_check_rejects_negative(self, machine):
        with pytest.raises(ValueError):
            machine.fits_in_global_memory(-1)

    def test_blocks_for_words(self, machine):
        assert machine.blocks_for_words(0) == 0
        assert machine.blocks_for_words(1) == 1
        assert machine.blocks_for_words(machine.b) == 1
        assert machine.blocks_for_words(machine.b + 1) == 2

    def test_block_of_address(self, machine):
        assert machine.block_of_address(0) == 0
        assert machine.block_of_address(machine.b) == 1

    def test_block_of_address_out_of_range(self, machine):
        with pytest.raises(ValueError):
            machine.block_of_address(machine.G)

    def test_bank_of_address_rotates(self, machine):
        assert machine.bank_of_address(0) == 0
        assert machine.bank_of_address(machine.b + 3) == 3

    def test_thread_blocks_for(self, machine):
        assert machine.thread_blocks_for(1) == 1
        assert machine.thread_blocks_for(machine.b * 5) == 5
        assert machine.thread_blocks_for(machine.b * 5 + 1) == 6

    def test_describe_mentions_parameters(self, machine):
        text = machine.describe()
        assert str(machine.p) in text and str(machine.G) in text

    def test_perfect_machine_for(self):
        machine = perfect_machine_for(threads=1000, b=32, M=1024, G=1 << 20)
        assert machine.k == 32  # ceil(1000 / 32)
        assert machine.b == 32

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=64))
    def test_k_times_b_is_p(self, k, b):
        machine = ATGPUMachine(p=k * b, b=b, M=max(b, 64), G=max(b, 1024))
        assert machine.k == k


class TestRoundMetrics:
    def test_transfer_aggregates(self):
        metrics = RoundMetrics(time=3, io_blocks=5, inward_words=100,
                               outward_words=50, inward_transactions=2,
                               outward_transactions=1)
        assert metrics.transfer_words == 150
        assert metrics.transfer_transactions == 3

    def test_words_without_transactions_rejected(self):
        with pytest.raises(ValueError):
            RoundMetrics(time=1, io_blocks=1, inward_words=10, inward_transactions=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            RoundMetrics(time=-1, io_blocks=0)

    def test_with_label(self):
        metrics = RoundMetrics(time=1, io_blocks=2)
        labelled = metrics.with_label("round 1")
        assert labelled.label == "round 1"
        assert labelled.time == metrics.time


class TestAlgorithmMetrics:
    def _rounds(self):
        return [
            RoundMetrics(time=3, io_blocks=4, inward_words=64, inward_transactions=1,
                         global_words=128, shared_words_per_mp=32, thread_blocks=2),
            RoundMetrics(time=5, io_blocks=2, outward_words=1, outward_transactions=1,
                         global_words=64, shared_words_per_mp=16, thread_blocks=1),
        ]

    def test_aggregates(self):
        metrics = AlgorithmMetrics(self._rounds(), name="demo")
        assert metrics.num_rounds == 2
        assert metrics.total_time == 8
        assert metrics.total_io_blocks == 6
        assert metrics.total_inward_words == 64
        assert metrics.total_outward_words == 1
        assert metrics.total_transfer_words == 65
        assert metrics.total_transfer_transactions == 2
        assert metrics.max_global_words == 128
        assert metrics.max_shared_words_per_mp == 32
        assert metrics.max_thread_blocks == 2

    def test_iteration_and_indexing(self):
        metrics = AlgorithmMetrics(self._rounds())
        assert len(metrics) == 2
        assert metrics[0].time == 3
        assert [r.time for r in metrics] == [3, 5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AlgorithmMetrics([])

    def test_validate_against_global_limit(self, machine):
        rounds = [RoundMetrics(time=1, io_blocks=1, global_words=machine.G + 1)]
        with pytest.raises(CapacityError, match="global"):
            AlgorithmMetrics(rounds).validate_against(machine)

    def test_validate_against_shared_limit(self, machine):
        rounds = [RoundMetrics(time=1, io_blocks=1,
                               shared_words_per_mp=machine.M + 1)]
        with pytest.raises(CapacityError, match="shared"):
            AlgorithmMetrics(rounds).validate_against(machine)

    def test_runs_on(self, machine):
        ok = AlgorithmMetrics([RoundMetrics(time=1, io_blocks=1)])
        too_big = AlgorithmMetrics(
            [RoundMetrics(time=1, io_blocks=1, global_words=machine.G + 1)]
        )
        assert ok.runs_on(machine)
        assert not too_big.runs_on(machine)


class TestMetricsBuilder:
    def test_accumulation(self):
        builder = MetricsBuilder(label="demo")
        builder.add_operations(3)
        builder.add_io(7)
        builder.add_inward(100, transactions=2)
        builder.add_outward(10)
        builder.use_global(500)
        builder.use_global(400)  # max is kept
        builder.use_shared(64)
        builder.set_thread_blocks(9)
        metrics = builder.build()
        assert metrics.time == 3
        assert metrics.io_blocks == 7
        assert metrics.inward_words == 100
        assert metrics.inward_transactions == 2
        assert metrics.outward_words == 10
        assert metrics.outward_transactions == 1
        assert metrics.global_words == 500
        assert metrics.shared_words_per_mp == 64
        assert metrics.thread_blocks == 9
        assert metrics.label == "demo"

    def test_negative_rejected(self):
        builder = MetricsBuilder()
        with pytest.raises(ValueError):
            builder.add_operations(-1)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=20))
    def test_operations_sum_property(self, ops):
        builder = MetricsBuilder()
        for op in ops:
            builder.add_operations(op)
        builder.add_io(1)
        assert builder.build().time == pytest.approx(sum(ops))
