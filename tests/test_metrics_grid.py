"""Tests for the array-native metrics layer (``MetricsGrid`` et al.).

The contract under test is *exact equality*: for every built-in algorithm
the vectorized ``metrics_batch`` factory must describe precisely the same
workload as calling the scalar ``metrics`` factory once per size — every
per-round field, every packed batch grid, every capacity-validation error
(same message, same first offending size).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    ALL_ALGORITHMS,
    GPUAlgorithm,
    Histogram,
    MatrixMultiplication,
    PrefixSum,
    Reduction,
    SpMV,
    Stencil1D,
    VectorAddition,
)
from repro.core.batch import MetricsBatch
from repro.core.metrics import (
    AlgorithmMetrics,
    CapacityError,
    MetricsGrid,
    RoundMetrics,
    metrics_grid,
    round_arrays,
)
from repro.core.presets import GTX_650, GTX_980

ALGORITHMS = [
    VectorAddition, Reduction, MatrixMultiplication, PrefixSum, Histogram,
    SpMV, Stencil1D,
]

PRESETS = [GTX_650, GTX_980]

#: Batch grids that must be identical between the two compilation paths.
BATCH_FIELDS = (
    "round_counts", "mask", "time", "io_blocks", "inward_words",
    "outward_words", "inward_transactions", "outward_transactions",
    "shared_words_per_mp", "thread_blocks", "max_global_words",
    "max_shared_words",
)

#: Scalar per-round fields compared for exact equality.
ROUND_FIELDS = (
    "time", "io_blocks", "inward_words", "outward_words",
    "inward_transactions", "outward_transactions", "global_words",
    "shared_words_per_mp", "thread_blocks",
)


def scalar_batch(algorithm, sizes, preset) -> MetricsBatch:
    """The batch compiled through the per-size scalar factory."""
    return MetricsBatch.compile(
        algorithm.name, sizes,
        lambda n: algorithm.metrics(n, preset.machine),
    )


@pytest.mark.parametrize("preset", PRESETS, ids=lambda p: p.name)
@pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
class TestVectorizedFactoryParity:
    def test_grid_matches_scalar_metrics_exactly(self, algorithm_cls, preset):
        """Every per-round field of the grid equals the scalar factory's."""
        algo = algorithm_cls()
        sizes = algo.default_sizes()
        grid = algo.metrics_batch(sizes, preset.machine)
        assert tuple(grid.sizes) == tuple(sizes)
        for col, n in enumerate(sizes):
            scalar = algo.metrics(n, preset.machine)
            assert int(grid.round_counts[col]) == len(scalar)
            materialized = grid.metrics_at(col)
            for got, want in zip(materialized, scalar):
                for name in ROUND_FIELDS:
                    assert getattr(got, name) == getattr(want, name), (
                        algo.name, n, name
                    )

    def test_packed_batches_identical(self, algorithm_cls, preset):
        """Grid-compiled and scalar-compiled batches agree on every array."""
        algo = algorithm_cls()
        assert algo.supports_metrics_batch
        sizes = algo.default_sizes()
        via_grid = algo.compile_batch(sizes, preset=preset)
        via_scalar = scalar_batch(algo, sizes, preset)
        for name in BATCH_FIELDS:
            assert np.array_equal(
                getattr(via_grid, name), getattr(via_scalar, name)
            ), (algo.name, name)

    def test_predict_sweep_paths_bitwise_equal(self, algorithm_cls, preset):
        """End to end: batch path (vectorized factory) vs scalar path."""
        algo = algorithm_cls()
        sizes = algo.default_sizes()
        backends = ("atgpu", "swgpu", "perfect", "agpu", "atgpu-async",
                    "atgpu-multi")
        batch = algo.predict_sweep(sizes, preset=preset, backends=backends,
                                   path="batch")
        scalar = algo.predict_sweep(sizes, preset=preset, backends=backends,
                                    path="scalar")
        for name in backends:
            assert np.array_equal(
                batch.series_for(name), scalar.series_for(name)
            ), (algo.name, name)
        assert np.array_equal(
            batch.predicted_transfer_proportions,
            scalar.predicted_transfer_proportions,
        )


class TestCapacityValidationParity:
    """Satellite: batch and scalar validation raise identical errors."""

    @pytest.mark.parametrize("preset", PRESETS, ids=lambda p: p.name)
    @pytest.mark.parametrize("algorithm_cls", ALGORITHMS)
    def test_same_message_and_first_offending_size(self, algorithm_cls,
                                                   preset):
        algo = algorithm_cls()
        machine = preset.machine
        # A sweep whose tail exceeds G: two offending sizes, so the error
        # must name the *first*.
        ok = algo.default_sizes()[0]
        too_big = machine.G
        bigger = 2 * machine.G
        if algo.name == "matrix_multiplication":
            # Sides, not elements: 3n² words must exceed G.
            too_big = int(np.ceil(np.sqrt(machine.G)))
            bigger = 2 * too_big
        sizes = [ok, too_big, bigger]
        assert algo.metrics(ok, machine).runs_on(machine)
        with pytest.raises(CapacityError) as scalar_exc:
            algo.metrics(too_big, machine).validate_against(machine)

        grid = algo.metrics_batch(sizes, machine)
        with pytest.raises(CapacityError) as grid_exc:
            grid.validate_against(machine)
        via_grid = algo.compile_batch(sizes, preset=preset)
        with pytest.raises(CapacityError) as batch_exc:
            via_grid.validate_against(machine)
        via_scalar = scalar_batch(algo, sizes, preset)
        with pytest.raises(CapacityError) as scalar_batch_exc:
            via_scalar.validate_against(machine)

        # Grid, grid-compiled batch and scalar-compiled batch agree to the
        # byte, and they name the first offending size.
        assert str(grid_exc.value) == str(batch_exc.value)
        assert str(batch_exc.value) == str(scalar_batch_exc.value)
        assert f"at size {too_big} " in str(batch_exc.value)
        assert f"at size {bigger} " not in str(batch_exc.value)
        # The words count and limit match the scalar per-size error.
        scalar_message = str(scalar_exc.value)
        batch_message = str(batch_exc.value)
        assert batch_message.replace(f" at size {too_big}", "") \
            == scalar_message

    def test_too_big_size_sweep_regression(self):
        """A sweep containing one oversized point fails on every path."""
        algo = VectorAddition()
        machine = GTX_650.machine
        sizes = [1_000, machine.G]
        with pytest.raises(CapacityError):
            algo.predict_sweep(sizes, preset=GTX_650, path="batch")
        with pytest.raises(CapacityError):
            algo.predict_sweep(sizes, preset=GTX_650, path="scalar")
        with pytest.raises(CapacityError):
            algo.metrics_batch(sizes, machine).validate_against(machine)
        assert not algo.metrics_batch(sizes, machine).runs_on(machine)
        assert algo.metrics_batch([1_000], machine).runs_on(machine)

    def test_shared_memory_violation_first_size(self):
        rounds = [round_arrays(
            3,
            time=1.0, io_blocks=1.0,
            shared_words_per_mp=np.array([1.0, 1e9, 2e9]),
            thread_blocks=1,
        )]
        grid = metrics_grid([10, 20, 30], rounds, name="demo")
        with pytest.raises(CapacityError, match="shared memory") as exc:
            grid.validate_against(GTX_650.machine)
        assert "at size 20 " in str(exc.value)


class TestMetricsGridStructure:
    def test_round_arrays_broadcasts_scalars(self):
        r = round_arrays(4, time=2.0, io_blocks=1, thread_blocks=3)
        assert r.time.shape == (4,)
        assert np.all(r.time == 2.0)
        assert np.all(r.thread_blocks == 3)
        assert np.all(r.present)
        assert r.num_sizes == 4

    def test_round_arrays_rejects_bad_shapes_and_values(self):
        with pytest.raises(ValueError, match="column"):
            round_arrays(3, time=[1.0, 2.0], io_blocks=0.0)
        with pytest.raises(ValueError, match="time"):
            round_arrays(2, time=-1.0, io_blocks=0.0)
        with pytest.raises(ValueError, match="thread_blocks"):
            round_arrays(2, time=1.0, io_blocks=0.0, thread_blocks=0)
        with pytest.raises(ValueError, match="inward"):
            round_arrays(2, time=1.0, io_blocks=0.0, inward_words=5.0)
        # Absent entries are exempt from validation.
        r = round_arrays(
            2, time=[1.0, -1.0], io_blocks=0.0,
            present=[True, False],
        )
        assert list(r.present) == [True, False]

    def test_grid_requires_top_aligned_presence(self):
        first = round_arrays(2, time=1.0, io_blocks=0.0,
                             present=[True, False])
        second = round_arrays(2, time=1.0, io_blocks=0.0,
                              present=[False, True])
        with pytest.raises(ValueError, match="top-aligned"):
            metrics_grid([1, 2], [first, second])

    def test_grid_requires_at_least_one_round_per_size(self):
        empty_col = round_arrays(2, time=1.0, io_blocks=0.0,
                                 present=[True, False])
        with pytest.raises(ValueError, match="no rounds"):
            metrics_grid([1, 2], [empty_col])
        with pytest.raises(ValueError, match="at least one input size"):
            metrics_grid([], [])
        with pytest.raises(ValueError, match="at least one round"):
            metrics_grid([1], [])

    def test_grid_rejects_mismatched_round_width(self):
        narrow = round_arrays(2, time=1.0, io_blocks=0.0)
        with pytest.raises(ValueError, match="covers 2 sizes"):
            metrics_grid([1, 2, 3], [narrow])

    def test_aggregates_match_scalar(self):
        algo = Reduction()
        machine = GTX_650.machine
        sizes = [1 << 12, 1 << 16, 1 << 20]
        grid = algo.metrics_batch(sizes, machine)
        for col, n in enumerate(sizes):
            scalar = algo.metrics(n, machine)
            assert grid.total_time[col] == scalar.total_time
            assert grid.total_io_blocks[col] == scalar.total_io_blocks
            assert grid.total_transfer_words[col] \
                == scalar.total_transfer_words
            assert grid.max_global_words[col] == scalar.max_global_words
            assert grid.max_shared_words_per_mp[col] \
                == scalar.max_shared_words_per_mp

    def test_select_columns(self):
        algo = Reduction()
        machine = GTX_650.machine
        sizes = [1 << 12, 1 << 16, 1 << 20]
        grid = algo.metrics_batch(sizes, machine)
        sub = grid.select([2, 0])
        assert sub.sizes == (sizes[2], sizes[0])
        # Rounds absent everywhere in the selection are dropped.
        shallow = grid.select([0])
        assert shallow.depth == int(grid.round_counts[0])
        with pytest.raises(ValueError):
            grid.select([])
        direct = algo.metrics_batch([sizes[2], sizes[0]], machine)
        for round_sub, round_direct in zip(sub, direct):
            assert np.array_equal(round_sub.time, round_direct.time)
            assert np.array_equal(round_sub.present, round_direct.present)

    def test_batch_select_propagates_grid(self):
        algo = Reduction()
        batch = algo.compile_batch([1 << 12, 1 << 16, 1 << 20],
                                   preset=GTX_650)
        sub = batch.select([1])
        assert sub.grid is not None
        assert sub.grid.sizes == (1 << 16,)
        assert len(sub.materialized_metrics()) == 1

    def test_from_metrics_column_packing_roundtrip(self):
        algo = Reduction()
        machine = GTX_650.machine
        sizes = [1 << 10, 1 << 18]
        metrics_list = [algo.metrics(n, machine) for n in sizes]
        grid = MetricsGrid.from_metrics(sizes, metrics_list)
        assert grid.name == algo.name
        for col in range(len(sizes)):
            rebuilt = grid.metrics_at(col)
            for got, want in zip(rebuilt, metrics_list[col]):
                for name in ROUND_FIELDS:
                    assert getattr(got, name) == getattr(want, name)
        with pytest.raises(ValueError, match="2 sizes but 1"):
            MetricsGrid.from_metrics(sizes, metrics_list[:1])

    def test_metrics_at_rejects_absent_round(self):
        r = round_arrays(2, time=1.0, io_blocks=0.0, present=[True, True])
        ragged = round_arrays(2, time=1.0, io_blocks=0.0,
                              present=[True, False])
        grid = metrics_grid([1, 2], [r, ragged])
        assert len(grid.metrics_at(0)) == 2
        assert len(grid.metrics_at(1)) == 1
        with pytest.raises(ValueError, match="absent"):
            ragged.round_at(1)


class TestDefaultScalarLoopFallback:
    """Custom algorithms without ``metrics_batch`` still batch correctly."""

    class _Custom(VectorAddition):
        name = "vector_addition"
        # Hide the vectorized factory: fall back to the base-class loop.
        metrics_batch = GPUAlgorithm.metrics_batch

    def test_default_packs_scalar_metrics(self):
        custom = self._Custom()
        assert not custom.supports_metrics_batch
        sizes = [1_000, 250_000]
        grid = custom.metrics_batch(sizes, GTX_650.machine)
        assert isinstance(grid, MetricsGrid)
        reference = VectorAddition().metrics_batch(sizes, GTX_650.machine)
        for round_got, round_want in zip(grid, reference):
            for name in ROUND_FIELDS:
                assert np.array_equal(
                    getattr(round_got, name).astype(float),
                    getattr(round_want, name).astype(float),
                )

    def test_default_predict_sweep_still_batches(self):
        custom = self._Custom()
        sizes = [1_000, 250_000]
        batch = custom.predict_sweep(sizes, preset=GTX_650, path="batch")
        scalar = custom.predict_sweep(sizes, preset=GTX_650, path="scalar")
        assert np.array_equal(batch.series_for("atgpu"),
                              scalar.series_for("atgpu"))


class TestCompileEntryPoints:
    def test_compile_rejects_conflicting_factories(self):
        algo = VectorAddition()
        machine = GTX_650.machine
        with pytest.raises(ValueError, match="not both"):
            MetricsBatch.compile(
                algo.name, [10],
                metrics_factory=lambda n: algo.metrics(n, machine),
                grid_factory=lambda ns: algo.metrics_batch(ns, machine),
            )
        with pytest.raises(ValueError, match="needs a metrics_factory"):
            MetricsBatch.compile(algo.name, [10])

    def test_compile_checks_grid_sizes(self):
        algo = VectorAddition()
        machine = GTX_650.machine
        with pytest.raises(ValueError, match="sizes"):
            MetricsBatch.compile(
                algo.name, [10, 20],
                grid_factory=lambda ns: algo.metrics_batch([10], machine),
            )

    def test_all_registered_algorithms_ship_vectorized_factories(self):
        for name, factory in ALL_ALGORITHMS.items():
            assert factory().supports_metrics_batch, name

    def test_non_positive_sizes_rejected_like_scalar(self):
        machine = GTX_650.machine
        for name, factory in ALL_ALGORITHMS.items():
            algo = factory()
            with pytest.raises(ValueError, match="positive integer"):
                algo.metrics(0, machine)
            with pytest.raises(ValueError, match="positive integer"):
                algo.metrics_batch([1_024, 0], machine)
            with pytest.raises(ValueError, match="positive integer"):
                algo.metrics_batch([-5], machine)
