"""Setuptools shim so `pip install -e . --no-use-pep517` works offline.

The environment this reproduction targets has no network access and no
``wheel`` package, so the PEP 517 editable-install path (which requires
``bdist_wheel``) is unavailable.  Keeping a minimal ``setup.py`` lets
``pip install -e . --no-build-isolation --no-use-pep517`` fall back to the
classic ``setup.py develop`` code path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
