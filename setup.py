"""Setuptools configuration for the ATGPU reproduction.

The environment this reproduction targets has no network access and no
``wheel`` package, so the PEP 517 editable-install path (which requires
``bdist_wheel``) is unavailable.  Keeping a classic ``setup.py`` lets
``pip install -e . --no-build-isolation --no-use-pep517`` fall back to the
``setup.py develop`` code path while still declaring the package metadata
CI and downstream consumers need.
"""

from setuptools import find_packages, setup

setup(
    name="repro-atgpu",
    version="1.0.0",
    description=(
        "Reproduction of 'An Improved Abstract GPU Model with Data Transfer' "
        "(Carroll & Wong, ICPP Workshops 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
